//! The `ρ` / `Φ` translation of Figure 4: OCaml source types become
//! multi-lingual representational types.
//!
//! ```text
//! ρ(unit)        = (1, ∅)
//! ρ(int)         = (⊤, ∅)
//! ρ(t ref)       = (0, ρ(t))
//! ρ(t₁ → t₂)     = ρ(t₁) → ρ(t₂)
//! ρ(L₁ | L₂ of t) = (1, ρ(t))              (one product per non-nullary ctor)
//! ρ(t₁ × t₂)     = (0, ρ(t₁) × ρ(t₂))
//!
//! Φ(external t₁ → … → tₙ) = ρ(t₁) value × … × ρ(tₙ₋₁) value →g ρ(tₙ) value
//! ```
//!
//! Extensions beyond the figure (documented in DESIGN.md): builtin
//! containers (`list`, `option`, `array`, `result`), heap-allocated
//! abstract types (`string`, `float`, `int32`, …), recursive user types
//! (knot-tied in the arena), unknown types (opaque), and polymorphic
//! variants (flagged; the analysis does not model them, §5.1).

use crate::ast::{ExternalDecl, TypeDeclKind, TypeExpr};
use crate::repository::TypeRepository;
use ffisafe_support::Span;
use ffisafe_types::{CtId, GcId, MtId, TypeTable};
use std::collections::HashMap;

/// A problem encountered during translation; none are fatal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateIssue {
    /// A polymorphic variant type was encountered; it is not modeled and
    /// downstream reports touching it may be spurious (§5.1/§5.2).
    PolyVariant {
        /// Where the type occurred.
        span: Span,
        /// The external involved.
        external: String,
    },
    /// A named type had no declaration; it is treated as opaque.
    UnknownType {
        /// Dotted name.
        name: String,
        /// Where it was referenced.
        span: Span,
    },
}

/// The multi-lingual signature of one `external`, ready for phase 2.
#[derive(Clone, Debug)]
pub struct ExternalSignature {
    /// OCaml-side name.
    pub ml_name: String,
    /// C function name (native variant).
    pub c_name: String,
    /// Bytecode-variant C name, when declared.
    pub byte_c_name: Option<String>,
    /// Translated parameter types (the `mt` under each `value`).
    pub params: Vec<MtId>,
    /// Translated return type.
    pub ret: MtId,
    /// The full C-side function type `value × … × value →γ value`.
    pub fun_ct: CtId,
    /// The function's (initially unconstrained) GC effect variable.
    pub effect: GcId,
    /// Which parameters are literally `unit` in the OCaml signature
    /// (used for the trailing-`unit` practice warning, §5.2).
    pub unit_params: Vec<bool>,
    /// Fresh `α` variables instantiated for the external's `'a` parameters,
    /// for the polymorphic-abuse check (the paper's `gz` seek warning).
    pub poly_params: Vec<(String, MtId)>,
    /// Whether the declared type mentions polymorphic variants.
    pub uses_poly_variant: bool,
    /// Source span of the `external` declaration.
    pub span: Span,
}

/// Output of phase 1 for a whole program.
#[derive(Clone, Debug, Default)]
pub struct Phase1 {
    /// One signature per `external`, keyed by C function name on lookup.
    pub signatures: Vec<ExternalSignature>,
    /// Non-fatal translation issues.
    pub issues: Vec<TranslateIssue>,
}

impl Phase1 {
    /// Finds the signature bound to C function `c_name` (native or
    /// bytecode variant).
    pub fn signature_for_c(&self, c_name: &str) -> Option<&ExternalSignature> {
        self.signatures
            .iter()
            .find(|s| s.c_name == c_name || s.byte_c_name.as_deref() == Some(c_name))
    }
}

/// Translates OCaml types into the shared [`TypeTable`].
pub struct Translator<'a> {
    repo: &'a TypeRepository,
    table: &'a mut TypeTable,
    /// Memo/in-progress map for named type applications, keyed by
    /// `name(arg-ids…)`; enables recursive types via knot-tying.
    named: HashMap<String, MtId>,
    issues: Vec<TranslateIssue>,
}

impl<'a> Translator<'a> {
    /// Creates a translator over `repo` allocating into `table`.
    pub fn new(repo: &'a TypeRepository, table: &'a mut TypeTable) -> Self {
        Translator { repo, table, named: HashMap::new(), issues: Vec::new() }
    }

    /// Consumes the translator, returning accumulated issues.
    pub fn into_issues(self) -> Vec<TranslateIssue> {
        self.issues
    }

    /// The `Φ` of Figure 4: translates one `external` declaration into a
    /// C-side function signature.
    pub fn translate_external(&mut self, ext: &ExternalDecl) -> ExternalSignature {
        let (param_tys, ret_ty) = ext.ty.arrow_spine();
        // Fresh monomorphic α per type variable of this external (§5.1:
        // C analysis is monomorphic).
        let mut poly = HashMap::new();
        let mut poly_params = Vec::new();
        for v in ext.ty.type_vars() {
            let mt = self.table.fresh_mt();
            poly.insert(v.clone(), mt);
            poly_params.push((v, mt));
        }
        let uses_poly_variant = ext.ty.mentions_poly_variant();
        if uses_poly_variant {
            self.issues.push(TranslateIssue::PolyVariant {
                span: ext.span,
                external: ext.ml_name.clone(),
            });
        }
        let params: Vec<MtId> = param_tys.iter().map(|t| self.rho(t, &poly, ext.span)).collect();
        let unit_params: Vec<bool> = param_tys.iter().map(|t| t.is_unit()).collect();
        let ret = self.rho(ret_ty, &poly, ext.span);
        let param_cts: Vec<CtId> = params.iter().map(|&mt| self.table.ct_value(mt)).collect();
        let ret_ct = self.table.ct_value(ret);
        let effect = self.table.fresh_gc();
        let fun_ct = self.table.ct_fun(param_cts, ret_ct, effect);
        let mut names = ext.c_names.clone();
        let c_name = names.pop().unwrap_or_default();
        let byte_c_name = names.pop();
        ExternalSignature {
            ml_name: ext.ml_name.clone(),
            c_name,
            byte_c_name,
            params,
            ret,
            fun_ct,
            effect,
            unit_params,
            poly_params,
            uses_poly_variant,
            span: ext.span,
        }
    }

    /// The `ρ` of Figure 4, extended to the whole declaration language.
    pub fn rho(&mut self, ty: &TypeExpr, env: &HashMap<String, MtId>, span: Span) -> MtId {
        match ty {
            TypeExpr::Var(v) => match env.get(v) {
                Some(&mt) => mt,
                None => self.table.fresh_mt(),
            },
            TypeExpr::Arrow(..) => {
                let (ps, r) = ty.arrow_spine();
                let params: Vec<MtId> = ps.iter().map(|t| self.rho(t, env, span)).collect();
                let ret = self.rho(r, env, span);
                self.table.mt_fun(params, ret)
            }
            TypeExpr::Tuple(ts) => {
                let fields: Vec<MtId> = ts.iter().map(|t| self.rho(t, env, span)).collect();
                self.product_block(&fields)
            }
            TypeExpr::Constr(path, args) => self.rho_constr(path, args, env, span),
            TypeExpr::PolyVariant => {
                // Unmodeled (§5.1): a nominal abstract type. Glue code
                // manipulates polymorphic variants as hashed integers and
                // blocks, which this type cannot unify with — reproducing
                // the paper's polymorphic-variant false positives.
                self.table.mt_abstract("<poly-variant>", false)
            }
            TypeExpr::Object => self.table.mt_abstract("<object>", true),
        }
    }

    /// `(0, Π(fields))`: a tag-0 structured block.
    fn product_block(&mut self, fields: &[MtId]) -> MtId {
        let pi = self.table.pi_closed(fields);
        let sigma = self.table.sigma_closed(&[pi]);
        let psi = self.table.psi_count(0);
        self.table.mt_rep(psi, sigma)
    }

    /// `(n, ∅)` for an immediate-only type.
    fn immediate(&mut self, n: Option<u32>) -> MtId {
        let psi = match n {
            Some(k) => self.table.psi_count(k),
            None => self.table.psi_top(),
        };
        let sigma = self.table.sigma_nil();
        self.table.mt_rep(psi, sigma)
    }

    fn rho_constr(
        &mut self,
        path: &[String],
        args: &[TypeExpr],
        env: &HashMap<String, MtId>,
        span: Span,
    ) -> MtId {
        let name = path.last().map(String::as_str).unwrap_or("?");
        // Builtins first (the pre-generated stdlib repository of §5.1).
        match (name, args.len()) {
            ("unit", 0) => return self.immediate(Some(1)),
            ("int", 0) => return self.immediate(None),
            ("bool", 0) => return self.immediate(Some(2)),
            ("char", 0) => return self.immediate(None),
            ("string", 0) | ("bytes", 0) => return self.table.mt_abstract("string", true),
            ("float", 0) => return self.table.mt_abstract("float", true),
            ("int32", 0) => return self.table.mt_abstract("int32", true),
            ("int64", 0) => return self.table.mt_abstract("int64", true),
            ("nativeint", 0) => return self.table.mt_abstract("nativeint", true),
            ("exn", 0) => return self.table.mt_abstract("exn", true),
            ("in_channel", 0) => return self.table.mt_abstract("in_channel", true),
            ("out_channel", 0) => return self.table.mt_abstract("out_channel", true),
            ("option", 1) => {
                // None | Some of 'a  =  (1, ρ('a))
                let a = self.rho(&args[0], env, span);
                let pi = self.table.pi_closed(&[a]);
                let sigma = self.table.sigma_closed(&[pi]);
                let psi = self.table.psi_count(1);
                return self.table.mt_rep(psi, sigma);
            }
            ("ref", 1) => {
                // (0, ρ(t)) — a one-field mutable block
                let a = self.rho(&args[0], env, span);
                return self.product_block(&[a]);
            }
            ("list", 1) => {
                // [] | (::) of 'a * 'a list  =  (1, ρ('a) × µ)
                let key = self.app_key("list", &args[0], env, span);
                if let Some(&hit) = self.named.get(&key) {
                    return hit;
                }
                let knot = self.table.fresh_mt();
                self.named.insert(key.clone(), knot);
                let a = self.rho(&args[0], env, span);
                let pi = self.table.pi_closed(&[a, knot]);
                let sigma = self.table.sigma_closed(&[pi]);
                let psi = self.table.psi_count(1);
                let list = self.table.mt_rep(psi, sigma);
                self.table.link_mt(knot, list);
                self.named.insert(key, list);
                return list;
            }
            ("array", 1) => {
                // tag-0 block of statically-unknown size
                let a = self.rho(&args[0], env, span);
                let pi = self.table.pi_array(a);
                let sigma = self.table.sigma_closed(&[pi]);
                let psi = self.table.psi_count(0);
                return self.table.mt_rep(psi, sigma);
            }
            ("result", 2) => {
                // Ok of 'a | Error of 'b  =  (0, ρ('a) + ρ('b))
                let a = self.rho(&args[0], env, span);
                let b = self.rho(&args[1], env, span);
                let pa = self.table.pi_closed(&[a]);
                let pb = self.table.pi_closed(&[b]);
                let sigma = self.table.sigma_closed(&[pa, pb]);
                let psi = self.table.psi_count(0);
                return self.table.mt_rep(psi, sigma);
            }
            _ => {}
        }
        // User-declared types from the repository.
        let Some(decl) = self.repo.lookup(name).cloned() else {
            self.issues.push(TranslateIssue::UnknownType { name: name.to_string(), span });
            return self.table.mt_abstract(name, true);
        };
        // Translate arguments, bind them to the declaration's parameters.
        let arg_mts: Vec<MtId> = args.iter().map(|t| self.rho(t, env, span)).collect();
        let key = {
            let ids: Vec<String> =
                arg_mts.iter().map(|m| self.table.find_mt(*m).as_raw().to_string()).collect();
            format!("{name}({})", ids.join(","))
        };
        if let Some(&hit) = self.named.get(&key) {
            return hit;
        }
        let knot = self.table.fresh_mt();
        self.named.insert(key.clone(), knot);
        let mut inner_env: HashMap<String, MtId> = HashMap::new();
        for (p, a) in decl.params.iter().zip(arg_mts.iter()) {
            inner_env.insert(p.clone(), *a);
        }
        // Declarations refer to their own parameters only; merge outer env
        // for robustness against under-applied decls.
        for (k, v) in env {
            inner_env.entry(k.clone()).or_insert(*v);
        }
        let body = match &decl.kind {
            TypeDeclKind::Alias(t) => self.rho(t, &inner_env, span),
            TypeDeclKind::Sum(variants) => {
                let nullary = variants.iter().filter(|v| v.is_nullary()).count() as u32;
                let mut products = Vec::new();
                for v in variants.iter().filter(|v| !v.is_nullary()) {
                    let fields: Vec<MtId> =
                        v.args.iter().map(|t| self.rho(t, &inner_env, span)).collect();
                    products.push(self.table.pi_closed(&fields));
                }
                let sigma = self.table.sigma_closed(&products);
                let psi = self.table.psi_count(nullary);
                self.table.mt_rep(psi, sigma)
            }
            TypeDeclKind::Record(fields) => {
                let fs: Vec<MtId> =
                    fields.iter().map(|f| self.rho(&f.ty, &inner_env, span)).collect();
                self.product_block(&fs)
            }
            // Opaque types are memoized inference *variables*: their hidden
            // representation is discovered from the C side (typically
            // `ct custom` via a `(value)` cast), and the memoization makes
            // every use of the same opaque type share one variable — so the
            // analysis "checks that OCaml code faithfully distinguishes the
            // C types" (§2): two different C types flowing into one opaque
            // type is a unification error.
            TypeDeclKind::Opaque => self.table.fresh_mt(),
            TypeDeclKind::PolyVariant => {
                self.issues.push(TranslateIssue::PolyVariant { span, external: name.to_string() });
                self.table.mt_abstract("<poly-variant>", false)
            }
        };
        self.table.link_mt(knot, body);
        self.named.insert(key, body);
        body
    }

    fn app_key(
        &mut self,
        ctor: &str,
        arg: &TypeExpr,
        env: &HashMap<String, MtId>,
        span: Span,
    ) -> String {
        // Key list applications by their (translated) element type so that
        // `int list` inside `int list list` shares one node.
        let a = self.rho(arg, env, span);
        format!("{ctor}({})", self.table.find_mt(a).as_raw())
    }
}

/// Runs phase 1 over a set of externals: translates every signature into
/// `table` and collects issues.
pub fn translate_program(
    repo: &TypeRepository,
    externals: &[ExternalDecl],
    table: &mut TypeTable,
) -> Phase1 {
    let mut tr = Translator::new(repo, table);
    let signatures: Vec<ExternalSignature> =
        externals.iter().map(|e| tr.translate_external(e)).collect();
    let issues = tr.into_issues();
    Phase1 { signatures, issues }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Item;
    use crate::parser::parse;
    use ffisafe_support::FileId;
    use ffisafe_types::{MtNode, PsiNode, SigmaNode};

    fn setup(src: &str) -> (TypeRepository, Vec<ExternalDecl>) {
        let pf = parse(FileId::from_raw(0), src);
        assert!(pf.errors.is_empty(), "{:?}", pf.errors);
        let mut repo = TypeRepository::new();
        repo.register_file(&pf);
        let externals = pf
            .items
            .into_iter()
            .filter_map(|i| match i {
                Item::External(e) => Some(e),
                _ => None,
            })
            .collect();
        (repo, externals)
    }

    fn rho_of(src: &str, ty: &str) -> (TypeTable, MtId) {
        let (repo, _) = setup(src);
        let pf = parse(FileId::from_raw(1), &format!("type probe = {ty}"));
        let Item::Type(decl) = &pf.items[0] else { panic!() };
        let TypeDeclKind::Alias(t) = &decl.kind else { panic!("{:?}", decl.kind) };
        let mut table = TypeTable::new();
        let mut tr = Translator::new(&repo, &mut table);
        let mt = tr.rho(t, &HashMap::new(), Span::dummy());
        (table, mt)
    }

    #[test]
    fn rho_unit_int_bool() {
        let (tt, m) = rho_of("", "unit");
        assert_eq!(tt.render_mt(m), "(1, ∅)");
        let (tt, m) = rho_of("", "int");
        assert_eq!(tt.render_mt(m), "(⊤, ∅)");
        let (tt, m) = rho_of("", "bool");
        assert_eq!(tt.render_mt(m), "(2, ∅)");
    }

    #[test]
    fn rho_running_example_type_t() {
        let (tt, m) = rho_of("type t = A of int | B | C of int * int | D", "t");
        assert_eq!(tt.render_mt(m), "(2, (⊤, ∅) + (⊤, ∅) × (⊤, ∅))");
    }

    #[test]
    fn rho_ref_and_tuple() {
        let (tt, m) = rho_of("", "int ref");
        assert_eq!(tt.render_mt(m), "(0, (⊤, ∅))");
        let (tt, m) = rho_of("", "int * string");
        assert_eq!(tt.render_mt(m), "(0, (⊤, ∅) × string)");
    }

    #[test]
    fn rho_option_matches_paper_encoding() {
        let (tt, m) = rho_of("", "string option");
        // None | Some of string = (1, string)
        assert_eq!(tt.render_mt(m), "(1, string)");
    }

    #[test]
    fn rho_list_is_recursive() {
        let (tt, m) = rho_of("", "int list");
        let MtNode::Rep(psi, sigma) = *tt.mt_node(m) else { panic!() };
        assert!(matches!(tt.psi_node(psi), PsiNode::Count(1)));
        // one non-nullary constructor (::) with two fields, second is the
        // list itself
        let SigmaNode::Cons(pi, _) = tt.sigma_node(sigma) else { panic!() };
        let fields = tt.pi_fields(pi).unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(tt.find_mt(fields[1]), tt.find_mt(m));
        // rendering terminates
        assert!(tt.render_mt(m).contains('µ'));
    }

    #[test]
    fn rho_array_is_uniform_block() {
        let (tt, m) = rho_of("", "float array");
        let MtNode::Rep(_, sigma) = *tt.mt_node(m) else { panic!() };
        let SigmaNode::Cons(pi, _) = tt.sigma_node(sigma) else { panic!() };
        assert_eq!(tt.pi_fields(pi), None); // array row
    }

    #[test]
    fn rho_record_is_tag0_block() {
        let (tt, m) = rho_of("type r = { x : int; mutable y : string }", "r");
        assert_eq!(tt.render_mt(m), "(0, (⊤, ∅) × string)");
    }

    #[test]
    fn rho_alias_expands() {
        let (tt, m) = rho_of("type size = int\ntype s2 = size", "s2");
        assert_eq!(tt.render_mt(m), "(⊤, ∅)");
    }

    #[test]
    fn rho_opaque_and_unknown_are_abstract() {
        // opaque types are shared inference variables (pinned by C uses)
        let (tt, m) = rho_of("type win", "win");
        assert!(matches!(tt.mt_node(m), MtNode::Var), "{}", tt.render_mt(m));
        let (repo, _) = setup("");
        let mut table = TypeTable::new();
        let mut tr = Translator::new(&repo, &mut table);
        let t = TypeExpr::named("mystery");
        let m = tr.rho(&t, &HashMap::new(), Span::dummy());
        assert_eq!(tr.into_issues().len(), 1);
        assert_eq!(table.render_mt(m), "mystery");
    }

    #[test]
    fn rho_parametrized_user_type() {
        let (tt, m) = rho_of("type 'a box = Box of 'a | Empty", "int box");
        // 1 nullary (Empty), 1 non-nullary Box of int
        assert_eq!(tt.render_mt(m), "(1, (⊤, ∅))");
    }

    #[test]
    fn rho_mutually_recursive_types() {
        let src = "type expr = Num of int | Neg of expr | Sum of expr * expr";
        let (tt, m) = rho_of(src, "expr");
        let s = tt.render_mt(m);
        // Num/Neg/Sum are all non-nullary: (0, …) with recursive products
        assert!(s.starts_with("(0, "), "{s}");
        assert!(s.contains('µ'), "{s}");
    }

    #[test]
    fn phi_translates_external_signature() {
        let (repo, exts) = setup(
            "type t = A of int | B\n\
             external get : t -> int -> unit = \"ml_get\"",
        );
        let mut table = TypeTable::new();
        let p1 = translate_program(&repo, &exts, &mut table);
        assert_eq!(p1.signatures.len(), 1);
        let sig = &p1.signatures[0];
        assert_eq!(sig.c_name, "ml_get");
        assert_eq!(sig.params.len(), 2);
        assert_eq!(table.render_mt(sig.params[0]), "(1, (⊤, ∅))");
        assert_eq!(table.render_mt(sig.params[1]), "(⊤, ∅)");
        assert_eq!(table.render_mt(sig.ret), "(1, ∅)");
        assert_eq!(sig.unit_params, vec![false, false]);
    }

    #[test]
    fn phi_records_poly_params() {
        let (repo, exts) = setup("external seek : 'a -> int -> unit = \"ml_seek\"");
        let mut table = TypeTable::new();
        let p1 = translate_program(&repo, &exts, &mut table);
        let sig = &p1.signatures[0];
        assert_eq!(sig.poly_params.len(), 1);
        assert_eq!(sig.poly_params[0].0, "a");
        // both uses of 'a share one variable
        assert_eq!(table.find_mt(sig.params[0]), table.find_mt(sig.poly_params[0].1));
    }

    #[test]
    fn phi_flags_poly_variants() {
        let (repo, exts) = setup("external f : [ `A | `B ] -> unit = \"ml_f\"");
        let mut table = TypeTable::new();
        let p1 = translate_program(&repo, &exts, &mut table);
        assert!(p1.signatures[0].uses_poly_variant);
        assert_eq!(p1.issues.len(), 1);
    }

    #[test]
    fn phi_trailing_unit_recorded() {
        let (repo, exts) = setup("external f : int -> unit -> unit = \"ml_f\"");
        let mut table = TypeTable::new();
        let p1 = translate_program(&repo, &exts, &mut table);
        assert_eq!(p1.signatures[0].unit_params, vec![false, true]);
    }

    #[test]
    fn signature_lookup_by_either_name() {
        let (repo, exts) = setup(
            "external g : int -> int -> int -> int -> int -> int -> int = \"g_bc\" \"g_nat\"",
        );
        let mut table = TypeTable::new();
        let p1 = translate_program(&repo, &exts, &mut table);
        assert!(p1.signature_for_c("g_nat").is_some());
        assert!(p1.signature_for_c("g_bc").is_some());
        assert!(p1.signature_for_c("none").is_none());
    }

    #[test]
    fn same_named_type_shares_nodes() {
        let (repo, _) = setup("type t = A of int | B");
        let mut table = TypeTable::new();
        let mut tr = Translator::new(&repo, &mut table);
        let te = TypeExpr::named("t");
        let m1 = tr.rho(&te, &HashMap::new(), Span::dummy());
        let m2 = tr.rho(&te, &HashMap::new(), Span::dummy());
        assert_eq!(table.find_mt(m1), table.find_mt(m2));
    }
}
