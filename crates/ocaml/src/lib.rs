//! OCaml frontend for `ffisafe` — phase 1 of the paper's analysis (§3.1,
//! §5.1).
//!
//! The paper's first tool, "based on the camlp4 preprocessor, analyzes
//! OCaml source programs and extracts the type signatures of any foreign
//! functions", resolving aliases and opaque types to concrete physical
//! representations and maintaining a central type repository across files.
//!
//! This crate provides that tool:
//!
//! * [`parser::parse`] — parses the OCaml declaration sublanguage
//!   (`type` and `external` declarations; other items are skipped, since
//!   OCaml function bodies are never analyzed);
//! * [`TypeRepository`] — the central repository, updated incrementally
//!   per file;
//! * [`translate::translate_program`] — the `ρ`/`Φ` translation of
//!   Figure 4, producing an [`ExternalSignature`] per `external` ready to
//!   seed the initial environment `Γ_I` of phase 2.
//!
//! # Examples
//!
//! ```
//! use ffisafe_ocaml::{parser, TypeRepository, translate};
//! use ffisafe_support::{SourceMap};
//! use ffisafe_types::TypeTable;
//!
//! let mut sm = SourceMap::new();
//! let src = r#"
//!     type t = A of int | B | C of int * int | D
//!     external examine : t -> int = "ml_examine"
//! "#;
//! let file = sm.add_file("t.ml", src);
//! let parsed = parser::parse(file, src);
//! let mut repo = TypeRepository::new();
//! repo.register_file(&parsed);
//!
//! let externals: Vec<_> = parsed.items.iter().filter_map(|i| match i {
//!     ffisafe_ocaml::ast::Item::External(e) => Some(e.clone()),
//!     _ => None,
//! }).collect();
//!
//! let mut table = TypeTable::new();
//! let phase1 = translate::translate_program(&repo, &externals, &mut table);
//! let sig = phase1.signature_for_c("ml_examine").unwrap();
//! assert_eq!(table.render_mt(sig.params[0]), "(2, (⊤, ∅) + (⊤, ∅) × (⊤, ∅))");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod repository;
pub mod token;
pub mod translate;

pub use ast::{ExternalDecl, Field, Item, TypeDecl, TypeDeclKind, TypeExpr, Variant};
pub use parser::{ParseError, ParsedFile};
pub use repository::TypeRepository;
pub use translate::{ExternalSignature, Phase1, TranslateIssue, Translator};
