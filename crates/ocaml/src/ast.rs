//! AST of the OCaml declaration sublanguage: type expressions, type
//! declarations and `external` declarations (Figure 1a and §3.1).

use ffisafe_support::Span;

/// An OCaml type expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeExpr {
    /// Type variable `'a`.
    Var(String),
    /// Function type `t₁ → t₂` (optionally labelled in the source).
    Arrow(Box<TypeExpr>, Box<TypeExpr>),
    /// Tuple `t₁ * … * tₙ` (n ≥ 2).
    Tuple(Vec<TypeExpr>),
    /// Type constructor application `(t₁, …, tₙ) path`, e.g. `int list`,
    /// `(int, string) Hashtbl.t`. `path` is the dotted name.
    Constr(Vec<String>, Vec<TypeExpr>),
    /// A polymorphic variant type `[ \`A | \`B of t ]`. The analysis does
    /// not model these (§5.1); they are carried opaquely and produce
    /// imprecision at use sites.
    PolyVariant,
    /// An object type `< … >`, treated like an opaque type (§5.1).
    Object,
}

impl TypeExpr {
    /// Convenience constructor for a non-parameterized named type.
    pub fn named(name: &str) -> Self {
        TypeExpr::Constr(vec![name.to_string()], Vec::new())
    }

    /// Splits an arrow spine `t₁ → … → tₙ → r` into (`[t₁…tₙ]`, `r`).
    pub fn arrow_spine(&self) -> (Vec<&TypeExpr>, &TypeExpr) {
        let mut params = Vec::new();
        let mut cur = self;
        while let TypeExpr::Arrow(a, b) = cur {
            params.push(a.as_ref());
            cur = b.as_ref();
        }
        (params, cur)
    }

    /// Whether this expression is the literal `unit` type.
    pub fn is_unit(&self) -> bool {
        matches!(self, TypeExpr::Constr(p, a) if a.is_empty() && p.len() == 1 && p[0] == "unit")
    }

    /// Whether a polymorphic variant occurs anywhere in this type.
    pub fn mentions_poly_variant(&self) -> bool {
        match self {
            TypeExpr::PolyVariant => true,
            TypeExpr::Var(_) | TypeExpr::Object => false,
            TypeExpr::Arrow(a, b) => a.mentions_poly_variant() || b.mentions_poly_variant(),
            TypeExpr::Tuple(ts) => ts.iter().any(|t| t.mentions_poly_variant()),
            TypeExpr::Constr(_, args) => args.iter().any(|t| t.mentions_poly_variant()),
        }
    }

    /// Collects the distinct type variables in order of first occurrence.
    pub fn type_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            TypeExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            TypeExpr::Arrow(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            TypeExpr::Tuple(ts) => ts.iter().for_each(|t| t.collect_vars(out)),
            TypeExpr::Constr(_, args) => args.iter().for_each(|t| t.collect_vars(out)),
            TypeExpr::PolyVariant | TypeExpr::Object => {}
        }
    }
}

/// One constructor of a sum type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Variant {
    /// Constructor name (capitalized).
    pub name: String,
    /// Argument types; empty for nullary constructors. `C of int * int`
    /// has two arguments, `C of (int * int)` has one tuple argument.
    pub args: Vec<TypeExpr>,
}

impl Variant {
    /// Whether the constructor takes no arguments (represented unboxed).
    pub fn is_nullary(&self) -> bool {
        self.args.is_empty()
    }
}

/// One field of a record type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Whether the field is `mutable`.
    pub mutable: bool,
    /// Field type.
    pub ty: TypeExpr,
}

/// The right-hand side of a `type` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeDeclKind {
    /// `type t = u`.
    Alias(TypeExpr),
    /// `type t = A | B of int | …`.
    Sum(Vec<Variant>),
    /// `type t = { a : int; mutable b : string }`.
    Record(Vec<Field>),
    /// `type t` — abstract/opaque.
    Opaque,
    /// `type t = [ \`A | \`B ]` — polymorphic variant alias (unsupported).
    PolyVariant,
}

/// A `type` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeDecl {
    /// Declared name.
    pub name: String,
    /// Type parameters in order (`'a`, `'b`).
    pub params: Vec<String>,
    /// Right-hand side.
    pub kind: TypeDeclKind,
    /// Source span of the declaration head.
    pub span: Span,
}

impl TypeDecl {
    /// Number of nullary constructors, when this is a sum type.
    pub fn nullary_count(&self) -> Option<usize> {
        match &self.kind {
            TypeDeclKind::Sum(vs) => Some(vs.iter().filter(|v| v.is_nullary()).count()),
            _ => None,
        }
    }
}

/// An `external` declaration binding an OCaml name to C code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExternalDecl {
    /// OCaml-side name.
    pub ml_name: String,
    /// Declared OCaml type.
    pub ty: TypeExpr,
    /// C function names: `[native]` or `[bytecode, native]` for functions
    /// of arity > 5.
    pub c_names: Vec<String>,
    /// Source span of the declaration.
    pub span: Span,
}

impl ExternalDecl {
    /// The C function name used in native compilation (the last one).
    pub fn native_c_name(&self) -> &str {
        self.c_names.last().map(String::as_str).unwrap_or("")
    }

    /// Declared OCaml arity (number of arrows on the spine).
    pub fn arity(&self) -> usize {
        self.ty.arrow_spine().0.len()
    }
}

/// A top-level item our parser understands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Item {
    /// A `type` declaration (or one member of a `type … and …` chain).
    Type(TypeDecl),
    /// An `external` declaration.
    External(ExternalDecl),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrow(a: TypeExpr, b: TypeExpr) -> TypeExpr {
        TypeExpr::Arrow(Box::new(a), Box::new(b))
    }

    #[test]
    fn arrow_spine_splits() {
        let t = arrow(
            TypeExpr::named("int"),
            arrow(TypeExpr::named("string"), TypeExpr::named("unit")),
        );
        let (params, ret) = t.arrow_spine();
        assert_eq!(params.len(), 2);
        assert!(ret.is_unit());
    }

    #[test]
    fn unit_detection() {
        assert!(TypeExpr::named("unit").is_unit());
        assert!(!TypeExpr::named("int").is_unit());
        assert!(!TypeExpr::Constr(vec!["M".into(), "unit".into()], vec![]).is_unit());
    }

    #[test]
    fn poly_variant_detection_recurses() {
        let t = arrow(TypeExpr::PolyVariant, TypeExpr::named("unit"));
        assert!(t.mentions_poly_variant());
        let t2 = TypeExpr::Tuple(vec![TypeExpr::named("int"), TypeExpr::PolyVariant]);
        assert!(t2.mentions_poly_variant());
        assert!(!TypeExpr::named("int").mentions_poly_variant());
    }

    #[test]
    fn type_vars_in_order_no_dups() {
        let t = arrow(
            TypeExpr::Var("a".into()),
            TypeExpr::Tuple(vec![TypeExpr::Var("b".into()), TypeExpr::Var("a".into())]),
        );
        assert_eq!(t.type_vars(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn variant_nullary() {
        let v = Variant { name: "B".into(), args: vec![] };
        assert!(v.is_nullary());
        let v2 = Variant { name: "A".into(), args: vec![TypeExpr::named("int")] };
        assert!(!v2.is_nullary());
    }

    #[test]
    fn nullary_count_for_running_example() {
        // type t = A of int | B | C of int * int | D
        let decl = TypeDecl {
            name: "t".into(),
            params: vec![],
            kind: TypeDeclKind::Sum(vec![
                Variant { name: "A".into(), args: vec![TypeExpr::named("int")] },
                Variant { name: "B".into(), args: vec![] },
                Variant {
                    name: "C".into(),
                    args: vec![TypeExpr::named("int"), TypeExpr::named("int")],
                },
                Variant { name: "D".into(), args: vec![] },
            ]),
            span: Span::dummy(),
        };
        assert_eq!(decl.nullary_count(), Some(2));
    }

    #[test]
    fn external_native_name_and_arity() {
        let e = ExternalDecl {
            ml_name: "f".into(),
            ty: arrow(TypeExpr::named("int"), TypeExpr::named("unit")),
            c_names: vec!["f_bytecode".into(), "f_native".into()],
            span: Span::dummy(),
        };
        assert_eq!(e.native_c_name(), "f_native");
        assert_eq!(e.arity(), 1);
    }
}
