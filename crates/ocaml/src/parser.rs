//! Recursive-descent parser for the OCaml declaration sublanguage.
//!
//! The paper's first phase only needs `type` and `external` declarations
//! (§3.1, §5.1): OCaml function bodies are never analyzed. The parser
//! therefore understands declarations precisely and *skips* every other
//! top-level item robustly.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use ffisafe_support::{FileId, Span};

/// A recoverable parse problem; the parser continues after recording one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Where the problem occurred.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

/// Result of parsing one OCaml source file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Declarations found, in source order.
    pub items: Vec<Item>,
    /// Recoverable problems encountered.
    pub errors: Vec<ParseError>,
}

/// Parses OCaml source text into declarations.
pub fn parse(file: FileId, src: &str) -> ParsedFile {
    let tokens = lex(file, src);
    Parser { tokens, pos: 0, out: ParsedFile::default() }.run()
}

const STOP_KEYWORDS: &[&str] = &[
    "of",
    "and",
    "type",
    "external",
    "mutable",
    "let",
    "val",
    "module",
    "open",
    "exception",
    "private",
    "rec",
    "end",
    "sig",
    "struct",
    "in",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    out: ParsedFile,
}

impl Parser {
    fn run(mut self) -> ParsedFile {
        loop {
            match self.peek_kind() {
                TokenKind::Eof => return self.out,
                k if k.is_kw("type") => {
                    self.bump();
                    self.parse_type_chain();
                }
                k if k.is_kw("external") => {
                    self.bump();
                    self.parse_external();
                }
                _ => self.skip_item(),
            }
        }
    }

    // ---- token plumbing ---------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_kind_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error(&mut self, message: impl Into<String>) {
        let span = self.span();
        self.out.errors.push(ParseError { span, message: message.into() });
    }

    /// Skips one unknown top-level item: advances until the next `type` /
    /// `external` keyword at bracket depth 0 (or EOF).
    fn skip_item(&mut self) {
        let mut depth = 0i32;
        loop {
            match self.peek_kind() {
                TokenKind::Eof => return,
                TokenKind::LParen | TokenKind::LBracket | TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RParen | TokenKind::RBracket | TokenKind::RBrace => {
                    depth -= 1;
                    self.bump();
                }
                k if depth <= 0 && (k.is_kw("type") || k.is_kw("external")) => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- type declarations --------------------------------------------------

    fn parse_type_chain(&mut self) {
        loop {
            if let Some(decl) = self.parse_type_decl() {
                self.out.items.push(Item::Type(decl));
            }
            if self.peek_kind().is_kw("and") {
                self.bump();
            } else {
                return;
            }
        }
    }

    fn parse_type_decl(&mut self) -> Option<TypeDecl> {
        let start = self.span();
        // `nonrec` is a modifier we can ignore
        if self.peek_kind().is_kw("nonrec") {
            self.bump();
        }
        // parameters: 'a  or  ('a, 'b)
        let mut params = Vec::new();
        match self.peek_kind().clone() {
            TokenKind::TyVar(v) => {
                self.bump();
                params.push(v);
            }
            TokenKind::LParen => {
                if matches!(self.peek_kind_at(1), TokenKind::TyVar(_)) {
                    self.bump(); // (
                    while let TokenKind::TyVar(v) = self.peek_kind().clone() {
                        self.bump();
                        params.push(v);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.eat(&TokenKind::RParen);
                }
            }
            _ => {}
        }
        let name = match self.peek_kind().clone() {
            TokenKind::LIdent(n) => {
                self.bump();
                n
            }
            _ => {
                self.error("expected type name");
                self.skip_item();
                return None;
            }
        };
        if !self.eat(&TokenKind::Eq) {
            // abstract type
            return Some(TypeDecl { name, params, kind: TypeDeclKind::Opaque, span: start });
        }
        if self.peek_kind().is_kw("private") {
            self.bump();
        }
        let kind = match self.peek_kind().clone() {
            TokenKind::LBrace => self.parse_record(),
            TokenKind::LBracket => {
                self.skip_brackets();
                TypeDeclKind::PolyVariant
            }
            TokenKind::Bar | TokenKind::UIdent(_) => self.parse_sum(),
            _ => TypeDeclKind::Alias(self.parse_type_expr()),
        };
        Some(TypeDecl { name, params, kind, span: start })
    }

    fn parse_record(&mut self) -> TypeDeclKind {
        self.bump(); // {
        let mut fields = Vec::new();
        loop {
            if self.eat(&TokenKind::RBrace) || matches!(self.peek_kind(), TokenKind::Eof) {
                break;
            }
            let mutable = if self.peek_kind().is_kw("mutable") {
                self.bump();
                true
            } else {
                false
            };
            let name = match self.peek_kind().clone() {
                TokenKind::LIdent(n) => {
                    self.bump();
                    n
                }
                _ => {
                    self.error("expected record field name");
                    self.bump();
                    continue;
                }
            };
            if !self.eat(&TokenKind::Colon) {
                self.error("expected `:` in record field");
            }
            let ty = self.parse_type_expr();
            fields.push(Field { name, mutable, ty });
            if !self.eat(&TokenKind::Semi) {
                self.eat(&TokenKind::RBrace);
                break;
            }
        }
        TypeDeclKind::Record(fields)
    }

    fn parse_sum(&mut self) -> TypeDeclKind {
        let mut variants = Vec::new();
        self.eat(&TokenKind::Bar); // optional leading bar
        while let TokenKind::UIdent(name) = self.peek_kind().clone() {
            self.bump();
            let mut args = Vec::new();
            if self.peek_kind().is_kw("of") {
                self.bump();
                args = self.parse_constructor_args();
            }
            variants.push(Variant { name, args });
            if !self.eat(&TokenKind::Bar) {
                break;
            }
        }
        TypeDeclKind::Sum(variants)
    }

    /// Parses `of` arguments: a `*`-separated list where each element is at
    /// postfix (not tuple) level, so `of int * int` yields two args while
    /// `of (int * int)` yields one tuple arg.
    fn parse_constructor_args(&mut self) -> Vec<TypeExpr> {
        let mut args = vec![self.parse_postfix_type()];
        while self.eat(&TokenKind::Star) {
            args.push(self.parse_postfix_type());
        }
        args
    }

    // ---- external declarations ------------------------------------------------

    fn parse_external(&mut self) {
        let start = self.span();
        let ml_name = match self.peek_kind().clone() {
            TokenKind::LIdent(n) => {
                self.bump();
                n
            }
            TokenKind::LParen => {
                // operator name like ( + ); consume to RParen
                self.bump();
                let mut name = String::from("op");
                while !matches!(self.peek_kind(), TokenKind::RParen | TokenKind::Eof) {
                    name.push('_');
                    self.bump();
                }
                self.eat(&TokenKind::RParen);
                name
            }
            _ => {
                self.error("expected external name");
                self.skip_item();
                return;
            }
        };
        if !self.eat(&TokenKind::Colon) {
            self.error("expected `:` in external declaration");
            self.skip_item();
            return;
        }
        let ty = self.parse_type_expr();
        if !self.eat(&TokenKind::Eq) {
            self.error("expected `=` in external declaration");
            self.skip_item();
            return;
        }
        let mut c_names = Vec::new();
        while let TokenKind::Str(s) = self.peek_kind().clone() {
            self.bump();
            // runtime hints like "noalloc"/"float" are attributes, not names
            if s != "noalloc" && s != "float" {
                c_names.push(s);
            }
        }
        if c_names.is_empty() {
            self.error("external declaration has no C function name");
            return;
        }
        let span = start.merge(self.span());
        self.out.items.push(Item::External(ExternalDecl { ml_name, ty, c_names, span }));
    }

    // ---- type expressions -------------------------------------------------------

    /// Arrow-level: handles labels (`x:t ->`, `?x:t ->`) and right
    /// associativity.
    fn parse_type_expr(&mut self) -> TypeExpr {
        // optional argument label
        if matches!(self.peek_kind(), TokenKind::Question)
            && matches!(self.peek_kind_at(1), TokenKind::LIdent(_))
            && matches!(self.peek_kind_at(2), TokenKind::Colon)
        {
            self.bump();
            self.bump();
            self.bump();
            // ?lbl:t means the parameter is `t option` at the C interface
            let inner = self.parse_tuple_type();
            let lhs = TypeExpr::Constr(vec!["option".into()], vec![inner]);
            return self.finish_arrow(lhs);
        }
        if matches!(self.peek_kind(), TokenKind::LIdent(s) if !STOP_KEYWORDS.contains(&s.as_str()))
            && matches!(self.peek_kind_at(1), TokenKind::Colon)
        {
            self.bump();
            self.bump();
        }
        let lhs = self.parse_tuple_type();
        self.finish_arrow(lhs)
    }

    fn finish_arrow(&mut self, lhs: TypeExpr) -> TypeExpr {
        if self.eat(&TokenKind::Arrow) {
            let rhs = self.parse_type_expr();
            TypeExpr::Arrow(Box::new(lhs), Box::new(rhs))
        } else {
            lhs
        }
    }

    fn parse_tuple_type(&mut self) -> TypeExpr {
        let first = self.parse_postfix_type();
        if self.peek_kind() == &TokenKind::Star {
            let mut parts = vec![first];
            while self.eat(&TokenKind::Star) {
                parts.push(self.parse_postfix_type());
            }
            TypeExpr::Tuple(parts)
        } else {
            first
        }
    }

    /// Postfix level: a primary followed by constructor applications
    /// (`int list`, `int list array`).
    fn parse_postfix_type(&mut self) -> TypeExpr {
        let mut base = self.parse_primary_type();
        loop {
            match self.peek_kind().clone() {
                TokenKind::LIdent(s) if !STOP_KEYWORDS.contains(&s.as_str()) => {
                    // `base s` — but only if this is genuinely an application,
                    // not a label (`s :`) of a following arrow
                    if matches!(self.peek_kind_at(1), TokenKind::Colon) {
                        break;
                    }
                    let path = self.parse_lident_path();
                    base = TypeExpr::Constr(path, vec![base]);
                }
                TokenKind::UIdent(_) => {
                    // `base M.t`
                    if !self.lookahead_is_module_type_path() {
                        break;
                    }
                    let path = self.parse_module_type_path();
                    base = TypeExpr::Constr(path, vec![base]);
                }
                _ => break,
            }
        }
        base
    }

    fn parse_primary_type(&mut self) -> TypeExpr {
        match self.peek_kind().clone() {
            TokenKind::TyVar(v) => {
                self.bump();
                TypeExpr::Var(v)
            }
            TokenKind::Other('_') => {
                self.bump();
                TypeExpr::Var("_".into())
            }
            TokenKind::LParen => {
                self.bump();
                let first = self.parse_type_expr();
                if self.eat(&TokenKind::Comma) {
                    // (t1, t2) path
                    let mut args = vec![first];
                    loop {
                        args.push(self.parse_type_expr());
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.eat(&TokenKind::RParen);
                    let path = match self.peek_kind().clone() {
                        TokenKind::LIdent(_) => self.parse_lident_path(),
                        TokenKind::UIdent(_) => self.parse_module_type_path(),
                        _ => {
                            self.error("expected type constructor after (t, …)");
                            vec!["?".into()]
                        }
                    };
                    TypeExpr::Constr(path, args)
                } else {
                    self.eat(&TokenKind::RParen);
                    first
                }
            }
            TokenKind::LIdent(s) if !STOP_KEYWORDS.contains(&s.as_str()) => {
                let path = self.parse_lident_path();
                TypeExpr::Constr(path, Vec::new())
            }
            TokenKind::UIdent(_) => {
                let path = self.parse_module_type_path();
                TypeExpr::Constr(path, Vec::new())
            }
            TokenKind::LBracket => {
                self.skip_brackets();
                TypeExpr::PolyVariant
            }
            TokenKind::Lt => {
                self.skip_angle_object();
                TypeExpr::Object
            }
            _ => {
                self.error("expected a type");
                self.bump();
                TypeExpr::named("?")
            }
        }
    }

    /// Parses `ident(.ident)*` starting at an LIdent.
    fn parse_lident_path(&mut self) -> Vec<String> {
        let mut path = Vec::new();
        if let TokenKind::LIdent(s) = self.peek_kind().clone() {
            self.bump();
            path.push(s);
        }
        while self.peek_kind() == &TokenKind::Dot {
            if let TokenKind::LIdent(s) | TokenKind::UIdent(s) = self.peek_kind_at(1).clone() {
                self.bump();
                self.bump();
                path.push(s);
            } else {
                break;
            }
        }
        path
    }

    /// Whether `UIdent (. UIdent)* . LIdent` starts here.
    fn lookahead_is_module_type_path(&self) -> bool {
        let mut n = 0usize;
        loop {
            match self.peek_kind_at(n) {
                TokenKind::UIdent(_) => {}
                _ => return false,
            }
            match self.peek_kind_at(n + 1) {
                TokenKind::Dot => {}
                _ => return false,
            }
            match self.peek_kind_at(n + 2) {
                TokenKind::LIdent(_) => return true,
                TokenKind::UIdent(_) => n += 2,
                _ => return false,
            }
        }
    }

    /// Parses `M(.N)*.t`.
    fn parse_module_type_path(&mut self) -> Vec<String> {
        let mut path = Vec::new();
        loop {
            match self.peek_kind().clone() {
                TokenKind::UIdent(s) => {
                    self.bump();
                    path.push(s);
                    if !self.eat(&TokenKind::Dot) {
                        return path;
                    }
                }
                TokenKind::LIdent(s) => {
                    self.bump();
                    path.push(s);
                    return path;
                }
                _ => {
                    self.error("malformed module path");
                    return path;
                }
            }
        }
    }

    fn skip_brackets(&mut self) {
        // at `[`
        let mut depth = 0i32;
        loop {
            match self.peek_kind() {
                TokenKind::LBracket => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBracket => {
                    depth -= 1;
                    self.bump();
                    if depth <= 0 {
                        return;
                    }
                }
                TokenKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn skip_angle_object(&mut self) {
        let mut depth = 0i32;
        loop {
            match self.peek_kind() {
                TokenKind::Lt => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Gt => {
                    depth -= 1;
                    self.bump();
                    if depth <= 0 {
                        return;
                    }
                }
                TokenKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> ParsedFile {
        parse(FileId::from_raw(0), src)
    }

    fn only_type(src: &str) -> TypeDecl {
        let pf = parse_src(src);
        assert!(pf.errors.is_empty(), "{:?}", pf.errors);
        match pf.items.into_iter().next().unwrap() {
            Item::Type(d) => d,
            other => panic!("expected type decl, got {other:?}"),
        }
    }

    fn only_external(src: &str) -> ExternalDecl {
        let pf = parse_src(src);
        assert!(pf.errors.is_empty(), "{:?}", pf.errors);
        match pf.items.into_iter().next().unwrap() {
            Item::External(e) => e,
            other => panic!("expected external decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_running_example_sum() {
        let d = only_type("type t = A of int | B | C of int * int | D");
        assert_eq!(d.name, "t");
        let TypeDeclKind::Sum(vs) = &d.kind else { panic!() };
        assert_eq!(vs.len(), 4);
        assert_eq!(vs[0].args.len(), 1);
        assert!(vs[1].is_nullary());
        assert_eq!(vs[2].args.len(), 2);
        assert!(vs[3].is_nullary());
        assert_eq!(d.nullary_count(), Some(2));
    }

    #[test]
    fn parenthesized_constructor_arg_is_single_tuple() {
        let d = only_type("type t = C of (int * int)");
        let TypeDeclKind::Sum(vs) = &d.kind else { panic!() };
        assert_eq!(vs[0].args.len(), 1);
        assert!(matches!(vs[0].args[0], TypeExpr::Tuple(_)));
    }

    #[test]
    fn parses_record_with_mutable() {
        let d = only_type("type r = { a : int; mutable b : string }");
        let TypeDeclKind::Record(fs) = &d.kind else { panic!() };
        assert_eq!(fs.len(), 2);
        assert!(!fs[0].mutable);
        assert!(fs[1].mutable);
    }

    #[test]
    fn parses_alias_and_opaque() {
        let d = only_type("type size = int");
        assert!(matches!(d.kind, TypeDeclKind::Alias(_)));
        let d = only_type("type handle");
        assert!(matches!(d.kind, TypeDeclKind::Opaque));
    }

    #[test]
    fn parses_parametrized_types() {
        let d = only_type("type 'a pair = 'a * 'a");
        assert_eq!(d.params, vec!["a".to_string()]);
        let d = only_type("type ('a, 'b) either = L of 'a | R of 'b");
        assert_eq!(d.params, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn parses_type_and_chain() {
        let pf = parse_src("type a = int and b = string");
        assert_eq!(pf.items.len(), 2);
    }

    #[test]
    fn parses_external_simple() {
        let e = only_external(r#"external f : int -> unit = "ml_f""#);
        assert_eq!(e.ml_name, "f");
        assert_eq!(e.native_c_name(), "ml_f");
        assert_eq!(e.arity(), 1);
    }

    #[test]
    fn parses_external_two_names() {
        let e = only_external(
            r#"external g : int -> int -> int -> int -> int -> int -> int = "g_bc" "g_nat""#,
        );
        assert_eq!(e.c_names, vec!["g_bc".to_string(), "g_nat".to_string()]);
        assert_eq!(e.native_c_name(), "g_nat");
        assert_eq!(e.arity(), 6);
    }

    #[test]
    fn external_noalloc_attribute_ignored() {
        let e = only_external(r#"external h : unit -> int = "ml_h" "noalloc""#);
        assert_eq!(e.c_names, vec!["ml_h".to_string()]);
    }

    #[test]
    fn parses_postfix_applications() {
        let e = only_external(r#"external f : int list -> int array -> unit = "ml_f""#);
        let (params, _) = e.ty.arrow_spine();
        assert_eq!(params[0], &TypeExpr::Constr(vec!["list".into()], vec![TypeExpr::named("int")]));
        assert_eq!(
            params[1],
            &TypeExpr::Constr(vec!["array".into()], vec![TypeExpr::named("int")])
        );
    }

    #[test]
    fn parses_multi_param_constructor() {
        let e = only_external(r#"external f : (int, string) Hashtbl.t -> unit = "ml_f""#);
        let (params, _) = e.ty.arrow_spine();
        match params[0] {
            TypeExpr::Constr(path, args) => {
                assert_eq!(path, &vec!["Hashtbl".to_string(), "t".to_string()]);
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_labelled_arrows() {
        let e = only_external(r#"external f : x:int -> ?y:string -> unit -> unit = "ml_f""#);
        let (params, _) = e.ty.arrow_spine();
        assert_eq!(params.len(), 3);
        // optional argument becomes an option at the FFI boundary
        assert_eq!(
            params[1],
            &TypeExpr::Constr(vec!["option".into()], vec![TypeExpr::named("string")])
        );
    }

    #[test]
    fn poly_variant_type_is_flagged() {
        let e = only_external(r#"external f : [ `A | `B ] -> unit = "ml_f""#);
        let (params, _) = e.ty.arrow_spine();
        assert_eq!(params[0], &TypeExpr::PolyVariant);
        assert!(e.ty.mentions_poly_variant());
    }

    #[test]
    fn skips_let_bindings_between_declarations() {
        let pf = parse_src(
            r#"
            type t = A | B
            let f x = x + 1
            let g = List.map (fun y -> y) [1; 2]
            external h : t -> unit = "ml_h"
            "#,
        );
        assert_eq!(pf.items.len(), 2);
        assert!(pf.errors.is_empty());
    }

    #[test]
    fn skips_module_scaffolding() {
        let pf = parse_src(
            r#"
            open Printf
            module M = struct let x = 1 end
            type u = { v : int }
            "#,
        );
        assert_eq!(pf.items.len(), 1);
    }

    #[test]
    fn recovers_from_bad_external() {
        let pf = parse_src(r#"external broken type ok = int"#);
        assert!(!pf.errors.is_empty());
        assert_eq!(pf.items.len(), 1); // `type ok` still parsed
    }

    #[test]
    fn tuple_in_signature() {
        let e = only_external(r#"external f : int * string -> unit = "ml_f""#);
        let (params, _) = e.ty.arrow_spine();
        assert!(matches!(params[0], TypeExpr::Tuple(_)));
    }

    #[test]
    fn object_type_is_opaque() {
        let e = only_external(r#"external f : < x : int > -> unit = "ml_f""#);
        let (params, _) = e.ty.arrow_spine();
        assert_eq!(params[0], &TypeExpr::Object);
    }
}
