//! Tokens of the OCaml declaration sublanguage.

use ffisafe_support::Span;

/// A lexed OCaml token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Lowercase identifier or keyword candidate (`type`, `t`, `external`).
    LIdent(String),
    /// Uppercase identifier (constructors, module names).
    UIdent(String),
    /// Type variable `'a`.
    TyVar(String),
    /// String literal (contents, unescaped).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// `=`
    Eq,
    /// `|`
    Bar,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `;;`
    SemiSemi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `.`
    Dot,
    /// `?`
    Question,
    /// `~`
    Tilde,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `#`
    Hash,
    /// `` ` `` (polymorphic-variant tag marker)
    Backtick,
    /// Any other punctuation we tolerate while skipping non-declarations.
    Other(char),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the identifier text when this is an `LIdent`.
    pub fn as_lident(&self) -> Option<&str> {
        match self {
            TokenKind::LIdent(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given keyword.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::LIdent(s) if s == kw)
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Source span.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_recognition() {
        assert!(TokenKind::LIdent("type".into()).is_kw("type"));
        assert!(!TokenKind::LIdent("typ".into()).is_kw("type"));
        assert!(!TokenKind::UIdent("Type".into()).is_kw("type"));
    }

    #[test]
    fn as_lident() {
        assert_eq!(TokenKind::LIdent("t".into()).as_lident(), Some("t"));
        assert_eq!(TokenKind::Eq.as_lident(), None);
    }
}
