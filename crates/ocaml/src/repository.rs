//! The central type repository (§5.1).
//!
//! The paper's camlp4-based tool incrementally updates "a central type
//! repository with the newly extracted type information" as each OCaml
//! source file is analyzed, "beginning with a pre-generated repository from
//! the standard OCaml library". [`TypeRepository`] plays that role: user
//! `type` declarations register here; builtin types (`int`, `'a list`,
//! `'a option`, …) are handled structurally by the translator.

use crate::ast::{Item, TypeDecl, TypeDeclKind};
use crate::parser::ParsedFile;
use std::collections::HashMap;

/// Maps type names to their declarations across all analyzed OCaml files.
///
/// Lookups use the *last* path segment (`Gl.point` → `point`), matching how
/// our single-namespace benchmark corpus is organized; a real multi-module
/// build would key on full paths.
#[derive(Clone, Debug, Default)]
pub struct TypeRepository {
    decls: HashMap<String, TypeDecl>,
}

impl TypeRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        TypeRepository::default()
    }

    /// Registers one declaration, replacing any previous one of the same
    /// name (later files win, as with the paper's incremental updates).
    pub fn register(&mut self, decl: TypeDecl) {
        self.decls.insert(decl.name.clone(), decl);
    }

    /// Registers every type declaration in a parsed file.
    pub fn register_file(&mut self, file: &ParsedFile) {
        for item in &file.items {
            if let Item::Type(d) = item {
                self.register(d.clone());
            }
        }
    }

    /// Looks up a declaration by name.
    pub fn lookup(&self, name: &str) -> Option<&TypeDecl> {
        self.decls.get(name)
    }

    /// Looks up by dotted path, using the final segment.
    pub fn lookup_path(&self, path: &[String]) -> Option<&TypeDecl> {
        path.last().and_then(|n| self.lookup(n))
    }

    /// Number of registered declarations.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Resolves alias chains: follows `type a = b` links (without
    /// arguments) until hitting a non-alias declaration, a builtin or an
    /// unknown name. Used to answer "what concrete form does this type
    /// have" for opaque-type replacement (§5.1).
    pub fn resolve_alias_chain(&self, name: &str) -> String {
        let mut cur = name.to_string();
        let mut hops = 0usize;
        while let Some(decl) = self.lookup(&cur) {
            match &decl.kind {
                TypeDeclKind::Alias(crate::ast::TypeExpr::Constr(path, args))
                    if args.is_empty() && path.len() == 1 =>
                {
                    cur = path[0].clone();
                }
                _ => return decl.name.clone(),
            }
            hops += 1;
            if hops > self.decls.len() + 1 {
                return cur; // alias cycle; give up
            }
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use ffisafe_support::FileId;

    fn repo_from(src: &str) -> TypeRepository {
        let pf = parse(FileId::from_raw(0), src);
        let mut repo = TypeRepository::new();
        repo.register_file(&pf);
        repo
    }

    #[test]
    fn registers_and_looks_up() {
        let repo = repo_from("type t = A | B\ntype u = int");
        assert_eq!(repo.len(), 2);
        assert!(repo.lookup("t").is_some());
        assert!(repo.lookup("v").is_none());
        assert!(repo.lookup_path(&["M".into(), "t".into()]).is_some());
    }

    #[test]
    fn later_registration_wins() {
        let mut repo = repo_from("type t = A");
        let pf = parse(FileId::from_raw(1), "type t = A | B");
        repo.register_file(&pf);
        let d = repo.lookup("t").unwrap();
        match &d.kind {
            TypeDeclKind::Sum(vs) => assert_eq!(vs.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn alias_chain_resolution() {
        let repo = repo_from("type a = b\ntype b = c\ntype c = X | Y");
        assert_eq!(repo.resolve_alias_chain("a"), "c");
        assert_eq!(repo.resolve_alias_chain("missing"), "missing");
    }

    #[test]
    fn alias_cycle_terminates() {
        let repo = repo_from("type a = b\ntype b = a");
        // must not loop forever
        let r = repo.resolve_alias_chain("a");
        assert!(r == "a" || r == "b");
    }
}
