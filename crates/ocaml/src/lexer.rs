//! Lexer for the OCaml declaration sublanguage.
//!
//! Handles nested `(* … *)` comments, string literals with escapes, type
//! variables, and the punctuation used by `type` and `external`
//! declarations. Everything else (expression syntax) is lexed permissively
//! into [`TokenKind::Other`] so the parser can skip non-declaration items.

use crate::token::{Token, TokenKind};
use ffisafe_support::{FileId, Span};

/// Lexes an entire OCaml source file into tokens (ending with `Eof`).
pub fn lex(file: FileId, src: &str) -> Vec<Token> {
    Lexer { file, src: src.as_bytes(), pos: 0 }.run()
}

struct Lexer<'a> {
    file: FileId,
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let lo = self.pos as u32;
            let Some(c) = self.peek() else {
                out.push(self.tok(TokenKind::Eof, lo));
                return out;
            };
            let kind = match c {
                b'a'..=b'z' | b'_' => {
                    let s = self.take_ident();
                    TokenKind::LIdent(s)
                }
                b'A'..=b'Z' => {
                    let s = self.take_ident();
                    TokenKind::UIdent(s)
                }
                b'\'' => {
                    // type variable 'a or char literal; we only need tyvars
                    self.bump();
                    if matches!(self.peek(), Some(b'a'..=b'z' | b'_')) {
                        let s = self.take_plain_ident();
                        // char literal like 'a' has a closing quote
                        if self.peek() == Some(b'\'') && s.len() == 1 {
                            self.bump();
                            TokenKind::Other('\'')
                        } else {
                            TokenKind::TyVar(s)
                        }
                    } else {
                        // char literal such as '\n' or '0'; consume loosely
                        if self.peek() == Some(b'\\') {
                            self.bump();
                            self.bump();
                        } else {
                            self.bump();
                        }
                        if self.peek() == Some(b'\'') {
                            self.bump();
                        }
                        TokenKind::Other('\'')
                    }
                }
                b'"' => {
                    let s = self.take_string();
                    TokenKind::Str(s)
                }
                b'0'..=b'9' => {
                    let n = self.take_int();
                    TokenKind::Int(n)
                }
                b'=' => {
                    self.bump();
                    TokenKind::Eq
                }
                b'|' => {
                    self.bump();
                    // tolerate || in skipped expressions
                    if self.peek() == Some(b'|') {
                        self.bump();
                        TokenKind::Other('|')
                    } else {
                        TokenKind::Bar
                    }
                }
                b'*' => {
                    self.bump();
                    TokenKind::Star
                }
                b'(' => {
                    self.bump();
                    TokenKind::LParen
                }
                b')' => {
                    self.bump();
                    TokenKind::RParen
                }
                b'[' => {
                    self.bump();
                    TokenKind::LBracket
                }
                b']' => {
                    self.bump();
                    TokenKind::RBracket
                }
                b'{' => {
                    self.bump();
                    TokenKind::LBrace
                }
                b'}' => {
                    self.bump();
                    TokenKind::RBrace
                }
                b';' => {
                    self.bump();
                    if self.peek() == Some(b';') {
                        self.bump();
                        TokenKind::SemiSemi
                    } else {
                        TokenKind::Semi
                    }
                }
                b':' => {
                    self.bump();
                    TokenKind::Colon
                }
                b',' => {
                    self.bump();
                    TokenKind::Comma
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        TokenKind::Arrow
                    } else {
                        TokenKind::Other('-')
                    }
                }
                b'.' => {
                    self.bump();
                    TokenKind::Dot
                }
                b'?' => {
                    self.bump();
                    TokenKind::Question
                }
                b'~' => {
                    self.bump();
                    TokenKind::Tilde
                }
                b'<' => {
                    self.bump();
                    TokenKind::Lt
                }
                b'>' => {
                    self.bump();
                    TokenKind::Gt
                }
                b'#' => {
                    self.bump();
                    TokenKind::Hash
                }
                b'`' => {
                    self.bump();
                    TokenKind::Backtick
                }
                other => {
                    self.bump();
                    TokenKind::Other(other as char)
                }
            };
            out.push(self.tok(kind, lo));
        }
    }

    fn tok(&self, kind: TokenKind, lo: u32) -> Token {
        Token { kind, span: Span::new(self.file, lo, self.pos as u32) }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.bump(),
                Some(b'(') if self.peek2() == Some(b'*') => self.skip_comment(),
                _ => return,
            }
        }
    }

    fn skip_comment(&mut self) {
        // at "(*"
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                None => return,
                Some(b'(') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                Some(b'*') if self.peek2() == Some(b')') => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                Some(b'"') => {
                    let _ = self.take_string();
                }
                _ => self.bump(),
            }
        }
    }

    fn take_ident(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'\'')) {
            // identifiers may contain primes (x') but a prime followed by a
            // letter at the start of lexing is a tyvar, handled by caller
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Like [`Self::take_ident`] but excludes primes — used for type
    /// variables, where `'x'` must lex as a char literal, not tyvar `x'`.
    fn take_plain_ident(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')) {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn take_string(&mut self) -> String {
        // at '"'
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'"') => {
                    self.bump();
                    return out;
                }
                Some(b'\\') => {
                    self.bump();
                    match self.peek() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'"') => out.push('"'),
                        Some(c) => out.push(c as char),
                        None => {}
                    }
                    self.bump();
                }
                Some(c) => {
                    out.push(c as char);
                    self.bump();
                }
            }
        }
    }

    fn take_int(&mut self) -> i64 {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'x' | b'X' | b'a'..=b'f' | b'A'..=b'F' | b'_')
        ) {
            self.bump();
        }
        let text: String = String::from_utf8_lossy(&self.src[start..self.pos]).replace('_', "");
        if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
            i64::from_str_radix(hex, 16).unwrap_or(0)
        } else {
            text.parse().unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(FileId::from_raw(0), src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_external_declaration() {
        let ks = kinds(r#"external seek : channel -> int -> unit = "ml_gz_seek""#);
        assert_eq!(
            ks,
            vec![
                TokenKind::LIdent("external".into()),
                TokenKind::LIdent("seek".into()),
                TokenKind::Colon,
                TokenKind::LIdent("channel".into()),
                TokenKind::Arrow,
                TokenKind::LIdent("int".into()),
                TokenKind::Arrow,
                TokenKind::LIdent("unit".into()),
                TokenKind::Eq,
                TokenKind::Str("ml_gz_seek".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_type_declaration_with_variants() {
        let ks = kinds("type t = A of int | B | C of int * int | D");
        assert!(ks.contains(&TokenKind::UIdent("A".into())));
        assert!(ks.contains(&TokenKind::Bar));
        assert!(ks.contains(&TokenKind::Star));
        assert!(ks.contains(&TokenKind::LIdent("of".into())));
    }

    #[test]
    fn nested_comments_are_skipped() {
        let ks = kinds("type (* a (* nested *) comment *) t = int");
        assert_eq!(ks[0], TokenKind::LIdent("type".into()));
        assert_eq!(ks[1], TokenKind::LIdent("t".into()));
    }

    #[test]
    fn tyvars_and_char_literals() {
        let ks = kinds("'a 'b_var");
        assert_eq!(ks[0], TokenKind::TyVar("a".into()));
        assert_eq!(ks[1], TokenKind::TyVar("b_var".into()));
        // char literal should not become a tyvar
        let ks = kinds("'x' 'a");
        assert_eq!(ks[0], TokenKind::Other('\''));
        assert_eq!(ks[1], TokenKind::TyVar("a".into()));
    }

    #[test]
    fn string_escapes() {
        let ks = kinds(r#""a\nb\"c""#);
        assert_eq!(ks[0], TokenKind::Str("a\nb\"c".into()));
    }

    #[test]
    fn semisemi_and_arrow() {
        let ks = kinds(";; ->");
        assert_eq!(ks[0], TokenKind::SemiSemi);
        assert_eq!(ks[1], TokenKind::Arrow);
    }

    #[test]
    fn integers_including_hex() {
        let ks = kinds("42 0x1f 1_000");
        assert_eq!(ks[0], TokenKind::Int(42));
        assert_eq!(ks[1], TokenKind::Int(31));
        assert_eq!(ks[2], TokenKind::Int(1000));
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex(FileId::from_raw(0), "type t");
        assert_eq!(toks[0].span.lo, 0);
        assert_eq!(toks[0].span.hi, 4);
        assert_eq!(toks[1].span.lo, 5);
        assert_eq!(toks[1].span.hi, 6);
    }

    #[test]
    fn backtick_for_polymorphic_variants() {
        let ks = kinds("[ `On | `Off ]");
        assert_eq!(ks[0], TokenKind::LBracket);
        assert_eq!(ks[1], TokenKind::Backtick);
    }
}
