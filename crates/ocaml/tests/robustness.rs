//! Robustness: the OCaml frontend must never panic and must always skip
//! unrecognized items rather than derail.

use ffisafe_ocaml::{parser, TypeRepository};
use ffisafe_support::FileId;
use proptest::prelude::*;

fn pipeline(src: &str) {
    let parsed = parser::parse(FileId::from_raw(0), src);
    let mut repo = TypeRepository::new();
    repo.register_file(&parsed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary text: lex + parse + register must not panic.
    #[test]
    fn prop_parser_never_panics_on_arbitrary_input(src in "\\PC{0,200}") {
        pipeline(&src);
    }

    /// OCaml-shaped token soup.
    #[test]
    fn prop_parser_never_panics_on_ml_like_input(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("type".to_string()),
                Just("external".to_string()),
                Just("of".to_string()),
                Just("and".to_string()),
                Just("mutable".to_string()),
                Just("let".to_string()),
                Just("t".to_string()),
                Just("A".to_string()),
                Just("int".to_string()),
                Just("'a".to_string()),
                Just("->".to_string()),
                Just("|".to_string()),
                Just("*".to_string()),
                Just("=".to_string()),
                Just(":".to_string()),
                Just(";".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just("`".to_string()),
                Just("\"c_f\"".to_string()),
            ],
            0..60,
        )
    ) {
        pipeline(&toks.join(" "));
    }

    /// Declarations survive arbitrary surrounding junk (bracket-free —
    /// an unbalanced opening bracket legitimately swallows what follows):
    /// the declarations themselves must still be found.
    #[test]
    fn prop_declarations_survive_junk(junk in "[a-z0-9 \\n=+*;.]{0,80}") {
        let src = format!(
            "let junk = {junk}\ntype probe = P0 | P1 of int\nexternal pf : probe -> int = \"c_pf\"\n"
        );
        let parsed = parser::parse(FileId::from_raw(0), &src);
        let types = parsed
            .items
            .iter()
            .filter(|i| matches!(i, ffisafe_ocaml::Item::Type(d) if d.name == "probe"))
            .count();
        let exts = parsed
            .items
            .iter()
            .filter(|i| matches!(i, ffisafe_ocaml::Item::External(e) if e.ml_name == "pf"))
            .count();
        prop_assert_eq!(types, 1);
        prop_assert_eq!(exts, 1);
    }
}

#[test]
fn comment_bomb_terminates() {
    let mut src = String::new();
    for _ in 0..500 {
        src.push_str("(* ");
    }
    src.push_str("type t = int");
    pipeline(&src);
}

#[test]
fn deeply_nested_types_do_not_overflow() {
    let mut ty = String::from("int");
    for _ in 0..300 {
        ty = format!("({ty}) list");
    }
    pipeline(&format!("type deep = {ty}"));
}
