//! Robustness: the OCaml frontend must never panic and must always skip
//! unrecognized items rather than derail.

use ffisafe_ocaml::{parser, TypeRepository};
use ffisafe_support::rng::Rng64;
use ffisafe_support::FileId;

fn pipeline(src: &str) {
    let parsed = parser::parse(FileId::from_raw(0), src);
    let mut repo = TypeRepository::new();
    repo.register_file(&parsed);
}

/// Arbitrary text: lex + parse + register must not panic.
#[test]
fn prop_parser_never_panics_on_arbitrary_input() {
    let mut rng = Rng64::seed_from_u64(0x0CA1);
    for _ in 0..512 {
        pipeline(&rng.arbitrary_text(200));
    }
}

/// OCaml-shaped token soup.
#[test]
fn prop_parser_never_panics_on_ml_like_input() {
    const TOKS: &[&str] = &[
        "type", "external", "of", "and", "mutable", "let", "t", "A", "int", "'a", "->", "|", "*",
        "=", ":", ";", "(", ")", "{", "}", "[", "]", "`", "\"c_f\"",
    ];
    let mut rng = Rng64::seed_from_u64(0x0CA2);
    for _ in 0..512 {
        let n = rng.gen_range(0..60usize);
        let soup: Vec<&str> = (0..n).map(|_| TOKS[rng.gen_range(0..TOKS.len())]).collect();
        pipeline(&soup.join(" "));
    }
}

/// Declarations survive arbitrary surrounding junk (bracket-free —
/// an unbalanced opening bracket legitimately swallows what follows):
/// the declarations themselves must still be found.
#[test]
fn prop_declarations_survive_junk() {
    const JUNK_POOL: &[char] =
        &['a', 'b', 'c', 'x', 'y', 'z', '0', '1', '9', ' ', '\n', '=', '+', '*', ';', '.'];
    let mut rng = Rng64::seed_from_u64(0x0CA3);
    for _ in 0..512 {
        let n = rng.gen_range(0..80usize);
        let junk: String = (0..n).map(|_| JUNK_POOL[rng.gen_range(0..JUNK_POOL.len())]).collect();
        let src = format!(
            "let junk = {junk}\ntype probe = P0 | P1 of int\nexternal pf : probe -> int = \"c_pf\"\n"
        );
        let parsed = parser::parse(FileId::from_raw(0), &src);
        let types = parsed
            .items
            .iter()
            .filter(|i| matches!(i, ffisafe_ocaml::Item::Type(d) if d.name == "probe"))
            .count();
        let exts = parsed
            .items
            .iter()
            .filter(|i| matches!(i, ffisafe_ocaml::Item::External(e) if e.ml_name == "pf"))
            .count();
        assert_eq!(types, 1, "junk: {junk:?}");
        assert_eq!(exts, 1, "junk: {junk:?}");
    }
}

#[test]
fn comment_bomb_terminates() {
    let mut src = String::new();
    for _ in 0..500 {
        src.push_str("(* ");
    }
    src.push_str("type t = int");
    pipeline(&src);
}

#[test]
fn deeply_nested_types_do_not_overflow() {
    let mut ty = String::from("int");
    for _ in 0..300 {
        ty = format!("({ty}) list");
    }
    pipeline(&format!("type deep = {ty}"));
}
