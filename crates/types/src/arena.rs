//! The type arena: one table owning every node of every sort, with
//! union-find resolution.
//!
//! Storage is layered for the parallel pipeline. A [`TypeTable`] built
//! from scratch owns its nodes outright; [`TypeTable::freeze`] turns the
//! post-link table into a [`FrozenTypeTable`] — six `Arc`-shared,
//! fully path-compressed node vectors — and [`FrozenTypeTable::overlay`]
//! hands out O(1) copy-on-write views of it. An overlay records only what
//! a worker changes: re-bound base nodes land in a small per-sort delta
//! map, fresh allocations append to a local tail, and every read falls
//! through to the frozen base. Ids allocated by an overlay are numbered
//! exactly as a deep clone would have numbered them, so snapshot-isolated
//! workers behave identically to the old clone-per-worker scheme while
//! paying per-function cost proportional to what they touch, not to the
//! whole base state.

use crate::term::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One sort's layered node storage: an immutable shared base, a sparse
/// copy-on-write delta over it, and a locally-owned tail for fresh
/// allocations. Ids `0..base.len()` address the base (through the delta),
/// ids past that address the tail — so overlay allocation order matches a
/// deep clone's exactly.
#[derive(Clone, Debug)]
pub(crate) struct Shelf<T> {
    base: Arc<Vec<T>>,
    /// Base ids this view re-bound, in id order (deterministic iteration).
    over: BTreeMap<u32, T>,
    local: Vec<T>,
}

impl<T> Default for Shelf<T> {
    fn default() -> Self {
        Shelf { base: Arc::new(Vec::new()), over: BTreeMap::new(), local: Vec::new() }
    }
}

impl<T: Clone + PartialEq> Shelf<T> {
    fn from_base(base: Arc<Vec<T>>) -> Self {
        Shelf { base, over: BTreeMap::new(), local: Vec::new() }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.base.len() + self.local.len()
    }

    #[inline]
    pub(crate) fn get(&self, i: u32) -> &T {
        let idx = i as usize;
        if idx < self.base.len() {
            match self.over.get(&i) {
                Some(v) => v,
                None => &self.base[idx],
            }
        } else {
            &self.local[idx - self.base.len()]
        }
    }

    /// Writing a base id's original value back removes the delta entry, so
    /// the delta holds exactly the base ids whose node differs from the
    /// frozen base — the property the effect-delta export relies on.
    pub(crate) fn set(&mut self, i: u32, v: T) {
        let idx = i as usize;
        if idx < self.base.len() {
            if self.base[idx] == v {
                self.over.remove(&i);
            } else {
                self.over.insert(i, v);
            }
        } else {
            self.local[idx - self.base.len()] = v;
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, v: T) -> u32 {
        let id = self.len() as u32;
        self.local.push(v);
        id
    }

    /// Base ids re-bound by this view, ascending.
    pub(crate) fn overlay_keys(&self) -> Vec<u32> {
        self.over.keys().copied().collect()
    }

    pub(crate) fn overlay_len(&self) -> usize {
        self.over.len()
    }

    /// Materializes base ∪ delta ∪ tail into one owned vector.
    fn into_full_vec(self) -> Vec<T> {
        if self.base.is_empty() {
            return self.local;
        }
        let mut out: Vec<T> = match Arc::try_unwrap(self.base) {
            Ok(v) => v,
            Err(shared) => shared.as_ref().clone(),
        };
        for (i, v) in self.over {
            out[i as usize] = v;
        }
        out.extend(self.local);
        out
    }
}

/// Owns all type nodes and implements union-find over each sort.
///
/// Every phase of the analysis allocates its types here: the OCaml
/// translation (`ρ`/`Φ`), the C-side `η` mapping, and the inference rules.
/// Nodes are never removed; links created by unification are compressed on
/// resolution.
///
/// A table is either self-contained (built by [`TypeTable::new`]) or an
/// overlay view of a [`FrozenTypeTable`]; the two behave identically
/// through this API.
///
/// # Examples
///
/// ```
/// use ffisafe_types::TypeTable;
/// let mut tt = TypeTable::new();
/// // Build the representational type of OCaml `unit`: (1, ∅)
/// let psi = tt.psi_count(1);
/// let sigma = tt.sigma_nil();
/// let unit = tt.mt_rep(psi, sigma);
/// assert_eq!(tt.render_mt(unit), "(1, ∅)");
/// ```
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    pub(crate) mts: Shelf<MtNode>,
    pub(crate) cts: Shelf<CtNode>,
    pub(crate) psis: Shelf<PsiNode>,
    pub(crate) sigmas: Shelf<SigmaNode>,
    pub(crate) pis: Shelf<PiNode>,
    pub(crate) gcs: Shelf<GcNode>,
}

/// An immutable, fully path-compressed type table shared by reference.
///
/// Produced by [`TypeTable::freeze`] after linking; every inference worker
/// gets an O(1) [`FrozenTypeTable::overlay`] view instead of a deep clone.
/// Cloning a frozen table clones six `Arc`s.
#[derive(Clone, Debug, Default)]
pub struct FrozenTypeTable {
    mts: Arc<Vec<MtNode>>,
    cts: Arc<Vec<CtNode>>,
    psis: Arc<Vec<PsiNode>>,
    sigmas: Arc<Vec<SigmaNode>>,
    pis: Arc<Vec<PiNode>>,
    gcs: Arc<Vec<GcNode>>,
}

impl FrozenTypeTable {
    /// A fresh mutable view: reads fall through to this frozen base,
    /// writes stay private to the view. O(1).
    pub fn overlay(&self) -> TypeTable {
        TypeTable {
            mts: Shelf::from_base(self.mts.clone()),
            cts: Shelf::from_base(self.cts.clone()),
            psis: Shelf::from_base(self.psis.clone()),
            sigmas: Shelf::from_base(self.sigmas.clone()),
            pis: Shelf::from_base(self.pis.clone()),
            gcs: Shelf::from_base(self.gcs.clone()),
        }
    }

    /// Total node count across all sorts.
    pub fn node_count(&self) -> usize {
        self.mts.len()
            + self.cts.len()
            + self.psis.len()
            + self.sigmas.len()
            + self.pis.len()
            + self.gcs.len()
    }

    /// Number of GC effect nodes.
    pub fn gc_count(&self) -> usize {
        self.gcs.len()
    }

    /// The node behind the canonical representative of a frozen effect id
    /// (frozen chains are at most one hop, but links are followed fully).
    pub fn gc_node(&self, mut id: GcId) -> GcNode {
        while let GcNode::Link(next) = self.gcs[id.0 as usize] {
            id = next;
        }
        self.gcs[id.0 as usize]
    }

    /// All `mt` nodes, id order (digest input).
    pub fn mts(&self) -> &[MtNode] {
        &self.mts
    }

    /// All `ct` nodes, id order (digest input).
    pub fn cts(&self) -> &[CtNode] {
        &self.cts
    }

    /// All `Ψ` nodes, id order (digest input).
    pub fn psis(&self) -> &[PsiNode] {
        &self.psis
    }

    /// All `Σ` nodes, id order (digest input).
    pub fn sigmas(&self) -> &[SigmaNode] {
        &self.sigmas
    }

    /// All `Π` nodes, id order (digest input).
    pub fn pis(&self) -> &[PiNode] {
        &self.pis
    }

    /// All GC effect nodes, id order (digest input).
    pub fn gcs(&self) -> &[GcNode] {
        &self.gcs
    }
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TypeTable::default()
    }

    /// Freezes this table into shared immutable storage.
    ///
    /// Every link chain of every sort is fully path-compressed first, so
    /// base chains in the frozen vectors are at most one hop and any later
    /// overlay write to a base id reflects a genuine change, never
    /// base-derivable compression.
    pub fn freeze(mut self) -> FrozenTypeTable {
        self.compress_all();
        FrozenTypeTable {
            mts: Arc::new(self.mts.into_full_vec()),
            cts: Arc::new(self.cts.into_full_vec()),
            psis: Arc::new(self.psis.into_full_vec()),
            sigmas: Arc::new(self.sigmas.into_full_vec()),
            pis: Arc::new(self.pis.into_full_vec()),
            gcs: Arc::new(self.gcs.into_full_vec()),
        }
    }

    fn compress_all(&mut self) {
        for i in 0..self.mts.len() as u32 {
            self.resolve_mt(MtId(i));
        }
        for i in 0..self.cts.len() as u32 {
            self.resolve_ct(CtId(i));
        }
        for i in 0..self.psis.len() as u32 {
            self.resolve_psi(PsiId(i));
        }
        for i in 0..self.sigmas.len() as u32 {
            self.resolve_sigma(SigmaId(i));
        }
        for i in 0..self.pis.len() as u32 {
            self.resolve_pi(PiId(i));
        }
        for i in 0..self.gcs.len() as u32 {
            self.resolve_gc(GcId(i));
        }
    }

    // ---- overlay observability -------------------------------------------

    /// Base GC effect ids this view re-bound, ascending. Because the
    /// unifier writes GC nodes only as links onto resolved canonicals (and
    /// the frozen base is fully compressed), every base effect class whose
    /// canonical or constant changed in this view has at least one member
    /// in this list — the effect-delta export scans it instead of every
    /// base class.
    pub fn gc_overlay_keys(&self) -> Vec<u32> {
        self.gcs.overlay_keys()
    }

    /// Total re-bound base ids across all sorts (diagnostics/tests).
    pub fn overlay_node_count(&self) -> usize {
        self.mts.overlay_len()
            + self.cts.overlay_len()
            + self.psis.overlay_len()
            + self.sigmas.overlay_len()
            + self.pis.overlay_len()
            + self.gcs.overlay_len()
    }

    // ---- allocation: mt -------------------------------------------------

    /// Fresh type variable `α`.
    pub fn fresh_mt(&mut self) -> MtId {
        self.push_mt(MtNode::Var)
    }

    /// OCaml function type node.
    pub fn mt_fun(&mut self, params: Vec<MtId>, ret: MtId) -> MtId {
        self.push_mt(MtNode::Fun(params, ret))
    }

    /// `ct custom` node.
    pub fn mt_custom(&mut self, ct: CtId) -> MtId {
        self.push_mt(MtNode::Custom(ct))
    }

    /// Representational type `(Ψ, Σ)`.
    pub fn mt_rep(&mut self, psi: PsiId, sigma: SigmaId) -> MtId {
        self.push_mt(MtNode::Rep(psi, sigma))
    }

    /// Fresh representational type `(ψ, σ)` with both components unbound.
    pub fn mt_fresh_rep(&mut self) -> MtId {
        let psi = self.fresh_psi();
        let sigma = self.fresh_sigma();
        self.mt_rep(psi, sigma)
    }

    /// Nominal abstract OCaml type.
    pub fn mt_abstract(&mut self, name: &str, heap: bool) -> MtId {
        self.push_mt(MtNode::Abstract { name: name.to_string(), heap })
    }

    fn push_mt(&mut self, n: MtNode) -> MtId {
        MtId(self.mts.push(n))
    }

    /// Overwrites the node behind `id`. Used by the OCaml translator to tie
    /// recursive knots (`'a list`) and by the unifier to install links.
    pub(crate) fn set_mt(&mut self, id: MtId, n: MtNode) {
        self.mts.set(id.0, n);
    }

    /// Binds the unbound variable `var` to `to`, tying a recursive knot.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not an unbound `α` variable.
    pub fn link_mt(&mut self, var: MtId, to: MtId) {
        assert!(
            matches!(*self.mts.get(var.0), MtNode::Var),
            "link_mt target must be an unbound variable"
        );
        self.set_mt(var, MtNode::Link(to));
    }

    // ---- allocation: ct -------------------------------------------------

    /// Fresh unknown C type.
    pub fn fresh_ct(&mut self) -> CtId {
        self.push_ct(CtNode::Var)
    }

    /// `void`.
    pub fn ct_void(&mut self) -> CtId {
        self.push_ct(CtNode::Void)
    }

    /// Any C integer type.
    pub fn ct_int(&mut self) -> CtId {
        self.push_ct(CtNode::Int)
    }

    /// Any C floating-point type.
    pub fn ct_float(&mut self) -> CtId {
        self.push_ct(CtNode::Float)
    }

    /// `mt value`.
    pub fn ct_value(&mut self, mt: MtId) -> CtId {
        self.push_ct(CtNode::Value(mt))
    }

    /// `α value` with a fresh `α` — the `η(value)` of §3.3.2.
    pub fn ct_fresh_value(&mut self) -> CtId {
        let mt = self.fresh_mt();
        self.ct_value(mt)
    }

    /// `ct *`.
    pub fn ct_ptr(&mut self, inner: CtId) -> CtId {
        self.push_ct(CtNode::Ptr(inner))
    }

    /// Nominal C type.
    pub fn ct_named(&mut self, name: &str) -> CtId {
        self.push_ct(CtNode::Named(name.to_string()))
    }

    /// Function type with effect.
    pub fn ct_fun(&mut self, params: Vec<CtId>, ret: CtId, gc: GcId) -> CtId {
        self.push_ct(CtNode::Fun(params, ret, gc))
    }

    fn push_ct(&mut self, n: CtNode) -> CtId {
        CtId(self.cts.push(n))
    }

    pub(crate) fn set_ct(&mut self, id: CtId, n: CtNode) {
        self.cts.set(id.0, n);
    }

    // ---- allocation: psi / sigma / pi / gc --------------------------------

    /// Fresh `ψ` variable.
    pub fn fresh_psi(&mut self) -> PsiId {
        PsiId(self.psis.push(PsiNode::Var))
    }

    /// `Ψ = n` (exactly `n` nullary constructors).
    pub fn psi_count(&mut self, n: u32) -> PsiId {
        PsiId(self.psis.push(PsiNode::Count(n)))
    }

    /// `Ψ = ⊤` (the type is `int`-like).
    pub fn psi_top(&mut self) -> PsiId {
        PsiId(self.psis.push(PsiNode::Top))
    }

    pub(crate) fn set_psi(&mut self, id: PsiId, n: PsiNode) {
        self.psis.set(id.0, n);
    }

    /// Fresh `σ` row variable.
    pub fn fresh_sigma(&mut self) -> SigmaId {
        SigmaId(self.sigmas.push(SigmaNode::Var))
    }

    /// The empty sum row `∅`.
    pub fn sigma_nil(&mut self) -> SigmaId {
        SigmaId(self.sigmas.push(SigmaNode::Nil))
    }

    /// `Π + Σ`.
    pub fn sigma_cons(&mut self, head: PiId, tail: SigmaId) -> SigmaId {
        SigmaId(self.sigmas.push(SigmaNode::Cons(head, tail)))
    }

    /// Builds a closed sum row from products.
    pub fn sigma_closed(&mut self, products: &[PiId]) -> SigmaId {
        let mut tail = self.sigma_nil();
        for &p in products.iter().rev() {
            tail = self.sigma_cons(p, tail);
        }
        tail
    }

    pub(crate) fn set_sigma(&mut self, id: SigmaId, n: SigmaNode) {
        self.sigmas.set(id.0, n);
    }

    /// Fresh `π` row variable.
    pub fn fresh_pi(&mut self) -> PiId {
        PiId(self.pis.push(PiNode::Var))
    }

    /// The empty product row `∅`.
    pub fn pi_nil(&mut self) -> PiId {
        PiId(self.pis.push(PiNode::Nil))
    }

    /// `mt × Π`.
    pub fn pi_cons(&mut self, head: MtId, tail: PiId) -> PiId {
        PiId(self.pis.push(PiNode::Cons(head, tail)))
    }

    /// Unknown-length block with uniform element type (`'a array`).
    pub fn pi_array(&mut self, elem: MtId) -> PiId {
        PiId(self.pis.push(PiNode::Array(elem)))
    }

    /// Builds a closed product row from field types.
    pub fn pi_closed(&mut self, fields: &[MtId]) -> PiId {
        let mut tail = self.pi_nil();
        for &f in fields.iter().rev() {
            tail = self.pi_cons(f, tail);
        }
        tail
    }

    pub(crate) fn set_pi(&mut self, id: PiId, n: PiNode) {
        self.pis.set(id.0, n);
    }

    /// Fresh effect variable `γ`.
    pub fn fresh_gc(&mut self) -> GcId {
        GcId(self.gcs.push(GcNode::Var))
    }

    /// The constant effect `gc`.
    pub fn gc_gc(&mut self) -> GcId {
        GcId(self.gcs.push(GcNode::Gc))
    }

    /// The constant effect `nogc`.
    pub fn gc_nogc(&mut self) -> GcId {
        GcId(self.gcs.push(GcNode::NoGc))
    }

    pub(crate) fn set_gc(&mut self, id: GcId, n: GcNode) {
        self.gcs.set(id.0, n);
    }

    // ---- resolution -------------------------------------------------------

    /// Canonical representative of an `mt`, with path compression.
    pub fn resolve_mt(&mut self, mut id: MtId) -> MtId {
        let mut seen = Vec::new();
        while let &MtNode::Link(next) = self.mts.get(id.0) {
            seen.push(id);
            id = next;
        }
        for s in seen {
            self.mts.set(s.0, MtNode::Link(id));
        }
        id
    }

    /// Canonical representative without mutation (no compression).
    pub fn find_mt(&self, mut id: MtId) -> MtId {
        while let &MtNode::Link(next) = self.mts.get(id.0) {
            id = next;
        }
        id
    }

    /// The node behind the canonical representative of `id`.
    pub fn mt_node(&self, id: MtId) -> &MtNode {
        let id = self.find_mt(id);
        self.mts.get(id.0)
    }

    /// Canonical representative of a `ct`.
    pub fn resolve_ct(&mut self, mut id: CtId) -> CtId {
        let mut seen = Vec::new();
        while let &CtNode::Link(next) = self.cts.get(id.0) {
            seen.push(id);
            id = next;
        }
        for s in seen {
            self.cts.set(s.0, CtNode::Link(id));
        }
        id
    }

    /// Canonical representative without mutation.
    pub fn find_ct(&self, mut id: CtId) -> CtId {
        while let &CtNode::Link(next) = self.cts.get(id.0) {
            id = next;
        }
        id
    }

    /// The node behind the canonical representative of `id`.
    pub fn ct_node(&self, id: CtId) -> &CtNode {
        let id = self.find_ct(id);
        self.cts.get(id.0)
    }

    /// Canonical representative of a `Ψ`.
    pub fn resolve_psi(&mut self, mut id: PsiId) -> PsiId {
        let mut seen = Vec::new();
        while let &PsiNode::Link(next) = self.psis.get(id.0) {
            seen.push(id);
            id = next;
        }
        for s in seen {
            self.psis.set(s.0, PsiNode::Link(id));
        }
        id
    }

    /// Canonical representative without mutation.
    pub fn find_psi(&self, mut id: PsiId) -> PsiId {
        while let &PsiNode::Link(next) = self.psis.get(id.0) {
            id = next;
        }
        id
    }

    /// The node behind the canonical representative of `id`.
    pub fn psi_node(&self, id: PsiId) -> PsiNode {
        let id = self.find_psi(id);
        *self.psis.get(id.0)
    }

    /// Canonical representative of a `Σ`.
    pub fn resolve_sigma(&mut self, mut id: SigmaId) -> SigmaId {
        let mut seen = Vec::new();
        while let &SigmaNode::Link(next) = self.sigmas.get(id.0) {
            seen.push(id);
            id = next;
        }
        for s in seen {
            self.sigmas.set(s.0, SigmaNode::Link(id));
        }
        id
    }

    /// Canonical representative without mutation.
    pub fn find_sigma(&self, mut id: SigmaId) -> SigmaId {
        while let &SigmaNode::Link(next) = self.sigmas.get(id.0) {
            id = next;
        }
        id
    }

    /// The node behind the canonical representative of `id`.
    pub fn sigma_node(&self, id: SigmaId) -> SigmaNode {
        let id = self.find_sigma(id);
        *self.sigmas.get(id.0)
    }

    /// Canonical representative of a `Π`.
    pub fn resolve_pi(&mut self, mut id: PiId) -> PiId {
        let mut seen = Vec::new();
        while let &PiNode::Link(next) = self.pis.get(id.0) {
            seen.push(id);
            id = next;
        }
        for s in seen {
            self.pis.set(s.0, PiNode::Link(id));
        }
        id
    }

    /// Canonical representative without mutation.
    pub fn find_pi(&self, mut id: PiId) -> PiId {
        while let &PiNode::Link(next) = self.pis.get(id.0) {
            id = next;
        }
        id
    }

    /// The node behind the canonical representative of `id`.
    pub fn pi_node(&self, id: PiId) -> PiNode {
        let id = self.find_pi(id);
        *self.pis.get(id.0)
    }

    /// Canonical representative of a `GC` effect.
    pub fn resolve_gc(&mut self, mut id: GcId) -> GcId {
        let mut seen = Vec::new();
        while let &GcNode::Link(next) = self.gcs.get(id.0) {
            seen.push(id);
            id = next;
        }
        for s in seen {
            self.gcs.set(s.0, GcNode::Link(id));
        }
        id
    }

    /// Canonical representative without mutation.
    pub fn find_gc(&self, mut id: GcId) -> GcId {
        while let &GcNode::Link(next) = self.gcs.get(id.0) {
            id = next;
        }
        id
    }

    /// The node behind the canonical representative of `id`.
    pub fn gc_node(&self, id: GcId) -> GcNode {
        let id = self.find_gc(id);
        *self.gcs.get(id.0)
    }

    // ---- statistics --------------------------------------------------------

    /// Total number of nodes across all sorts (bench metric).
    pub fn node_count(&self) -> usize {
        self.mts.len()
            + self.cts.len()
            + self.psis.len()
            + self.sigmas.len()
            + self.pis.len()
            + self.gcs.len()
    }

    /// Number of GC effect nodes. Parallel inference workers use the base
    /// table's count to tell shared (frozen) effect ids from ids they
    /// allocated locally in their overlay.
    pub fn gc_count(&self) -> usize {
        self.gcs.len()
    }

    /// Number of `mt` nodes, with the same shared/local reading as
    /// [`TypeTable::gc_count`].
    pub fn mt_count(&self) -> usize {
        self.mts.len()
    }

    // ---- structured queries -------------------------------------------------

    /// Number of products in a sum row, if the row is closed.
    pub fn sigma_len(&self, id: SigmaId) -> Option<usize> {
        let mut n = 0usize;
        let mut cur = self.find_sigma(id);
        loop {
            match *self.sigmas.get(cur.0) {
                SigmaNode::Nil => return Some(n),
                SigmaNode::Cons(_, tail) => {
                    n += 1;
                    cur = self.find_sigma(tail);
                    // cyclic rows cannot be closed
                    if n > self.sigmas.len() {
                        return None;
                    }
                }
                SigmaNode::Var => return None,
                SigmaNode::Link(_) => unreachable!("resolved"),
            }
        }
    }

    /// Returns `true` when the sum row is known to contain at least one
    /// product (the `|Σ| > 0` test of the (App) rule's `ValPtrs`).
    pub fn sigma_nonempty(&self, id: SigmaId) -> bool {
        matches!(self.sigma_node(id), SigmaNode::Cons(..))
    }

    /// Collects the products of a row up to its (possibly open) end.
    pub fn sigma_products(&self, id: SigmaId) -> Vec<PiId> {
        let mut out = Vec::new();
        let mut cur = self.find_sigma(id);
        while let &SigmaNode::Cons(head, tail) = self.sigmas.get(cur.0) {
            out.push(head);
            cur = self.find_sigma(tail);
            if out.len() > self.sigmas.len() {
                break; // cyclic row; stop
            }
        }
        out
    }

    /// Collects the fields of a product row up to its (possibly open) end.
    /// Returns `None` for `Array` rows, whose length is unknown.
    pub fn pi_fields(&self, id: PiId) -> Option<Vec<MtId>> {
        let mut out = Vec::new();
        let mut cur = self.find_pi(id);
        loop {
            match *self.pis.get(cur.0) {
                PiNode::Cons(head, tail) => {
                    out.push(head);
                    cur = self.find_pi(tail);
                    if out.len() > self.pis.len() {
                        return Some(out); // cyclic; stop
                    }
                }
                PiNode::Array(_) => return None,
                PiNode::Nil | PiNode::Var => return Some(out),
                PiNode::Link(_) => unreachable!("resolved"),
            }
        }
    }

    /// Whether `mt` is a heap pointer candidate for `ValPtrs(Γ)`: a
    /// representational type with at least one product, or a heap-allocated
    /// abstract type (strings, floats, boxed opaque data).
    pub fn mt_is_heap_pointer(&self, mt: MtId) -> bool {
        match self.mt_node(mt) {
            MtNode::Rep(_, sigma) => self.sigma_nonempty(*sigma),
            MtNode::Abstract { heap, .. } => *heap,
            _ => false,
        }
    }

    /// Whether `mt` resolved to something concrete (not a bare variable).
    pub fn mt_is_concrete(&self, mt: MtId) -> bool {
        !matches!(self.mt_node(mt), MtNode::Var)
    }

    /// Whether `mt` resolved to a fully *ground* type — no inference
    /// variable of any sort anywhere inside. Ground types render without
    /// variable indices, so two ground renders are equal iff the types are
    /// structurally identical; the pipeline's interface-consistency check
    /// relies on that.
    pub fn mt_is_ground(&self, mt: MtId) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.mt_ground_rec(mt, &mut seen)
    }

    fn mt_ground_rec(&self, mt: MtId, seen: &mut std::collections::HashSet<u32>) -> bool {
        let mt = self.find_mt(mt);
        if !seen.insert(mt.as_raw()) {
            return true; // equirecursive cycle: already being checked
        }
        match self.mt_node(mt) {
            MtNode::Var => false,
            MtNode::Abstract { .. } => true,
            MtNode::Custom(ct) => self.ct_ground_rec(*ct, seen),
            MtNode::Fun(params, ret) => {
                params.clone().iter().all(|p| self.mt_ground_rec(*p, seen))
                    && self.mt_ground_rec(*ret, seen)
            }
            MtNode::Rep(psi, sigma) => {
                let psi_ok = !matches!(self.psi_node(*psi), PsiNode::Var);
                psi_ok && self.sigma_ground_rec(*sigma, seen)
            }
            MtNode::Link(_) => unreachable!("resolved"),
        }
    }

    fn sigma_ground_rec(&self, sigma: SigmaId, seen: &mut std::collections::HashSet<u32>) -> bool {
        let mut cur = self.find_sigma(sigma);
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > self.sigmas.len() + 1 {
                return true; // cyclic row
            }
            match self.sigma_node(cur) {
                SigmaNode::Var => return false,
                SigmaNode::Nil => return true,
                SigmaNode::Cons(pi, rest) => {
                    if !self.pi_ground_rec(pi, seen) {
                        return false;
                    }
                    cur = self.find_sigma(rest);
                }
                SigmaNode::Link(_) => unreachable!("resolved"),
            }
        }
    }

    fn pi_ground_rec(&self, pi: PiId, seen: &mut std::collections::HashSet<u32>) -> bool {
        let mut cur = self.find_pi(pi);
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > self.pis.len() + 1 {
                return true; // cyclic row
            }
            match self.pi_node(cur) {
                PiNode::Var => return false,
                PiNode::Nil => return true,
                PiNode::Array(mt) => return self.mt_ground_rec(mt, seen),
                PiNode::Cons(mt, rest) => {
                    if !self.mt_ground_rec(mt, seen) {
                        return false;
                    }
                    cur = self.find_pi(rest);
                }
                PiNode::Link(_) => unreachable!("resolved"),
            }
        }
    }

    fn ct_ground_rec(&self, ct: CtId, seen: &mut std::collections::HashSet<u32>) -> bool {
        let ct = self.find_ct(ct);
        match self.ct_node(ct) {
            CtNode::Var => false,
            CtNode::Void | CtNode::Int | CtNode::Float | CtNode::Named(_) => true,
            CtNode::Value(mt) => self.mt_ground_rec(*mt, seen),
            CtNode::Ptr(inner) => self.ct_ground_rec(*inner, seen),
            CtNode::Fun(params, ret, gc) => {
                params.clone().iter().all(|p| self.ct_ground_rec(*p, seen))
                    && self.ct_ground_rec(*ret, seen)
                    && !matches!(self.gc_node(*gc), GcNode::Var)
            }
            CtNode::Link(_) => unreachable!("resolved"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_resolve_links() {
        let mut tt = TypeTable::new();
        let a = tt.fresh_mt();
        let b = tt.fresh_mt();
        let c = tt.fresh_mt();
        tt.set_mt(a, MtNode::Link(b));
        tt.set_mt(b, MtNode::Link(c));
        assert_eq!(tt.resolve_mt(a), c);
        // path compression happened
        assert_eq!(*tt.mts.get(a.as_raw()), MtNode::Link(c));
    }

    #[test]
    fn sigma_len_closed_and_open() {
        let mut tt = TypeTable::new();
        let p0 = tt.pi_nil();
        let p1 = tt.pi_nil();
        let closed = tt.sigma_closed(&[p0, p1]);
        assert_eq!(tt.sigma_len(closed), Some(2));
        let tail = tt.fresh_sigma();
        let open = tt.sigma_cons(p0, tail);
        assert_eq!(tt.sigma_len(open), None);
        assert!(tt.sigma_nonempty(open));
        let nil = tt.sigma_nil();
        assert!(!tt.sigma_nonempty(nil));
    }

    #[test]
    fn pi_fields_closed_and_array() {
        let mut tt = TypeTable::new();
        let a = tt.fresh_mt();
        let b = tt.fresh_mt();
        let pi = tt.pi_closed(&[a, b]);
        assert_eq!(tt.pi_fields(pi), Some(vec![a, b]));
        let arr = tt.pi_array(a);
        assert_eq!(tt.pi_fields(arr), None);
    }

    #[test]
    fn heap_pointer_classification() {
        let mut tt = TypeTable::new();
        // (⊤, ∅): an int — not a heap pointer
        let psi = tt.psi_top();
        let nil = tt.sigma_nil();
        let int_mt = tt.mt_rep(psi, nil);
        assert!(!tt.mt_is_heap_pointer(int_mt));
        // (0, Π) with one product — heap pointer
        let f = tt.fresh_mt();
        let pi = tt.pi_closed(&[f]);
        let psi0 = tt.psi_count(0);
        let sig = tt.sigma_closed(&[pi]);
        let ref_mt = tt.mt_rep(psi0, sig);
        assert!(tt.mt_is_heap_pointer(ref_mt));
        // heap abstract
        let s = tt.mt_abstract("string", true);
        assert!(tt.mt_is_heap_pointer(s));
        let c = tt.mt_abstract("win32_handle", false);
        assert!(!tt.mt_is_heap_pointer(c));
    }

    #[test]
    fn node_count_accumulates() {
        let mut tt = TypeTable::new();
        assert_eq!(tt.node_count(), 0);
        tt.fresh_mt();
        tt.fresh_psi();
        tt.fresh_gc();
        assert_eq!(tt.node_count(), 3);
    }

    #[test]
    fn find_does_not_mutate() {
        let mut tt = TypeTable::new();
        let a = tt.fresh_mt();
        let b = tt.fresh_mt();
        tt.set_mt(a, MtNode::Link(b));
        let found = tt.find_mt(a);
        assert_eq!(found, b);
        // no compression via find
        assert_eq!(*tt.mts.get(a.as_raw()), MtNode::Link(b));
    }

    #[test]
    fn freeze_compresses_and_overlay_reads_fall_through() {
        let mut tt = TypeTable::new();
        let a = tt.fresh_mt();
        let b = tt.fresh_mt();
        let c = tt.fresh_mt();
        tt.set_mt(a, MtNode::Link(b));
        tt.set_mt(b, MtNode::Link(c));
        let frozen = tt.freeze();
        let view = frozen.overlay();
        // frozen chains are ≤ 1 hop, so find needs no compression
        assert_eq!(view.find_mt(a), c);
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.overlay_node_count(), 0, "reads must not populate the overlay");
    }

    #[test]
    fn overlay_ids_match_clone_ids() {
        let mut tt = TypeTable::new();
        tt.fresh_mt();
        tt.fresh_gc();
        let mut cloned = tt.clone();
        let frozen = tt.freeze();
        let mut view = frozen.overlay();
        assert_eq!(view.fresh_mt(), cloned.fresh_mt());
        assert_eq!(view.fresh_gc(), cloned.fresh_gc());
        assert_eq!(view.node_count(), cloned.node_count());
    }

    #[test]
    fn overlay_writes_stay_private_and_equality_skips() {
        let mut tt = TypeTable::new();
        let a = tt.fresh_gc();
        let g = tt.gc_gc();
        let frozen = tt.freeze();
        let mut view = frozen.overlay();
        view.unify_gc(a, g);
        assert_eq!(view.gc_node(a), GcNode::Gc);
        assert_eq!(view.gc_overlay_keys(), vec![a.as_raw()], "only the re-bound id is recorded");
        // a sibling view never sees the write
        let sibling = frozen.overlay();
        assert_eq!(sibling.gc_node(a), GcNode::Var);
        // writing the base value back erases the delta entry
        let mut view2 = frozen.overlay();
        view2.set_gc(a, GcNode::Var);
        assert_eq!(view2.gc_overlay_keys(), Vec::<u32>::new());
    }

    #[test]
    fn freeze_of_overlay_materializes_all_layers() {
        let mut tt = TypeTable::new();
        let a = tt.fresh_mt();
        let frozen = tt.freeze();
        let mut view = frozen.overlay();
        let b = view.fresh_mt();
        view.unify_mt(a, b).unwrap();
        let refrozen = view.freeze();
        let reread = refrozen.overlay();
        assert_eq!(reread.find_mt(a), reread.find_mt(b));
        assert_eq!(reread.node_count(), 2);
    }
}
