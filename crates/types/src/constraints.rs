//! Deferred constraints: `T + 1 ≤ Ψ` bounds and GC effect edges
//! (`GC ⊑ GC′`), discharged after unification per §3.3.3.

use crate::arena::TypeTable;
use crate::lattice::FlatInt;
use crate::term::{GcId, GcNode, PsiId, PsiNode};
use ffisafe_support::Span;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A recorded `T + 1 ≤ Ψ` constraint from (Val Int Exp) or (If int tag).
#[derive(Clone, Debug)]
pub struct PsiBound {
    /// The flow-sensitive value `T` at constraint-generation time.
    pub t: FlatInt,
    /// The bound being constrained.
    pub psi: PsiId,
    /// Where the constraint arose.
    pub span: Span,
    /// Short description of the construct (for diagnostics).
    pub context: String,
}

/// A violated `Ψ` bound, with an explanation.
#[derive(Clone, Debug)]
pub struct PsiViolation {
    /// The original constraint.
    pub bound: PsiBound,
    /// Why it is violated.
    pub reason: String,
}

/// The constraint store accumulated during inference.
///
/// Unification happens eagerly; these are the two constraint forms the
/// paper defers: `Ψ` lower bounds (checked once `Ψ`s are resolved) and
/// the atomic-subtyping GC edges (solved by graph reachability).
///
/// Like the type arena, a constraint store can be an *overlay* over a
/// frozen, `Arc`-shared base (see [`ConstraintSet::overlay`]): reads see
/// base constraints followed by locally-recorded ones, writes append
/// locally, and global indices are continuous across the seam — index `n`
/// in an overlay means the same constraint a deep clone's index `n` would.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSet {
    /// Shared post-link constraints this store layers over, if any.
    base: Option<Arc<ConstraintSet>>,
    psi_bounds: Vec<PsiBound>,
    /// Edges `lo ⊑ hi`: if `lo` may collect, so may `hi`.
    gc_edges: Vec<(GcId, GcId)>,
}

impl ConstraintSet {
    /// Creates an empty store.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Creates a copy-on-write view over a shared base store. O(1).
    pub fn overlay(base: Arc<ConstraintSet>) -> Self {
        debug_assert!(base.base.is_none(), "overlay bases must be flat stores");
        ConstraintSet { base: Some(base), psi_bounds: Vec::new(), gc_edges: Vec::new() }
    }

    fn base_psi_bounds(&self) -> &[PsiBound] {
        self.base.as_deref().map_or(&[][..], |b| &b.psi_bounds)
    }

    fn base_gc_edges(&self) -> &[(GcId, GcId)] {
        self.base.as_deref().map_or(&[][..], |b| &b.gc_edges)
    }

    /// Records `t + 1 ≤ psi`.
    pub fn add_psi_bound(
        &mut self,
        t: FlatInt,
        psi: PsiId,
        span: Span,
        context: impl Into<String>,
    ) {
        self.psi_bounds.push(PsiBound { t, psi, span, context: context.into() });
    }

    /// Records the effect edge `lo ⊑ hi`.
    pub fn add_gc_edge(&mut self, lo: GcId, hi: GcId) {
        self.gc_edges.push((lo, hi));
    }

    /// Number of recorded `Ψ` bounds (base plus local).
    pub fn psi_bound_count(&self) -> usize {
        self.base_psi_bounds().len() + self.psi_bounds.len()
    }

    /// Recorded `Ψ` bounds from global index `start` on, in recording
    /// order (base first, then local appends).
    pub fn psi_bounds_from(&self, start: usize) -> impl Iterator<Item = &PsiBound> {
        self.base_psi_bounds().iter().chain(self.psi_bounds.iter()).skip(start)
    }

    /// Number of recorded GC edges (base plus local).
    pub fn gc_edge_count(&self) -> usize {
        self.base_gc_edges().len() + self.gc_edges.len()
    }

    /// Recorded GC edges from global index `start` on, in recording order
    /// (base first, then local appends).
    pub fn gc_edges_from(&self, start: usize) -> impl Iterator<Item = (GcId, GcId)> + '_ {
        self.base_gc_edges().iter().chain(self.gc_edges.iter()).copied().skip(start)
    }

    /// Checks every `Ψ` bound against the resolved table (§3.3.3):
    ///
    /// * `Ψ = ⊤` satisfies everything — the value is an ordinary integer;
    /// * an unresolved `ψ` satisfies everything — the value never flowed
    ///   into a context that fixed its type;
    /// * `Ψ = n` requires a known, non-negative `T` with `T + 1 ≤ n`;
    ///   negative values are never constructors, and a `⊤` value cannot be
    ///   proven in range.
    pub fn check_psi_bounds(&self, table: &TypeTable) -> Vec<PsiViolation> {
        let mut out = Vec::new();
        for bound in self.psi_bounds_from(0) {
            let node = table.psi_node(bound.psi);
            let violation = match node {
                PsiNode::Top | PsiNode::Var => None,
                PsiNode::Count(k) => match bound.t {
                    FlatInt::Bot => None,
                    FlatInt::Known(n) if n < 0 => Some(format!(
                        "negative value {n} used as a constructor of a sum type with {k} nullary constructor(s)"
                    )),
                    FlatInt::Known(n) if (n as u64) + 1 > k as u64 => Some(format!(
                        "constructor number {n} used but the sum type has only {k} nullary constructor(s)"
                    )),
                    FlatInt::Known(_) => None,
                    FlatInt::Top => Some(format!(
                        "unknown integer used where a sum type with exactly {k} nullary constructor(s) is required"
                    )),
                },
                PsiNode::Link(_) => unreachable!("resolved"),
            };
            if let Some(reason) = violation {
                out.push(PsiViolation { bound: bound.clone(), reason });
            }
        }
        out
    }

    /// Solves the GC effect constraints by graph reachability and returns
    /// the solution. An effect is `gc` if its canonical node is the
    /// constant `gc` or is reachable along recorded edges from one that is.
    pub fn solve_gc(&self, table: &mut TypeTable) -> GcSolution {
        // Build adjacency over canonical ids.
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut roots: VecDeque<u32> = VecDeque::new();
        let mut all_nodes: HashSet<u32> = HashSet::new();
        for (lo, hi) in self.gc_edges_from(0) {
            let lo = table.resolve_gc(lo).as_raw();
            let hi = table.resolve_gc(hi).as_raw();
            all_nodes.insert(lo);
            all_nodes.insert(hi);
            adj.entry(lo).or_default().push(hi);
        }
        for &n in &all_nodes {
            if matches!(table.gc_node(GcId(n)), GcNode::Gc) {
                roots.push_back(n);
            }
        }
        let mut gc_set: HashSet<u32> = roots.iter().copied().collect();
        while let Some(n) = roots.pop_front() {
            if let Some(succs) = adj.get(&n) {
                for &s in succs {
                    if gc_set.insert(s) {
                        roots.push_back(s);
                    }
                }
            }
        }
        GcSolution { gc_set }
    }
}

/// The result of [`ConstraintSet::solve_gc`].
#[derive(Clone, Debug, Default)]
pub struct GcSolution {
    gc_set: HashSet<u32>,
}

impl GcSolution {
    /// Whether the effect `id` may invoke the garbage collector.
    pub fn may_gc(&self, table: &TypeTable, id: GcId) -> bool {
        let canon = table.find_gc(id);
        if matches!(table.gc_node(canon), GcNode::Gc) {
            return true;
        }
        self.gc_set.contains(&canon.as_raw())
    }

    /// Number of effects proven `gc`.
    pub fn gc_count(&self) -> usize {
        self.gc_set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_bound_satisfied_by_top_and_unresolved() {
        let mut tt = TypeTable::new();
        let mut cs = ConstraintSet::new();
        let top = tt.psi_top();
        let var = tt.fresh_psi();
        cs.add_psi_bound(FlatInt::Top, top, Span::dummy(), "Val_int of unknown");
        cs.add_psi_bound(FlatInt::Known(7), var, Span::dummy(), "unused");
        assert!(cs.check_psi_bounds(&tt).is_empty());
    }

    #[test]
    fn psi_bound_violations() {
        let mut tt = TypeTable::new();
        let mut cs = ConstraintSet::new();
        let two = tt.psi_count(2);
        cs.add_psi_bound(FlatInt::Known(1), two, Span::dummy(), "ok"); // 1+1 <= 2
        cs.add_psi_bound(FlatInt::Known(2), two, Span::dummy(), "bad"); // 2+1 > 2
        cs.add_psi_bound(FlatInt::Known(-1), two, Span::dummy(), "negative");
        cs.add_psi_bound(FlatInt::Top, two, Span::dummy(), "unknown");
        cs.add_psi_bound(FlatInt::Bot, two, Span::dummy(), "unreachable");
        let v = cs.check_psi_bounds(&tt);
        assert_eq!(v.len(), 3);
        assert!(v.iter().any(|x| x.reason.contains("only 2")));
        assert!(v.iter().any(|x| x.reason.contains("negative")));
        assert!(v.iter().any(|x| x.reason.contains("unknown integer")));
    }

    #[test]
    fn psi_bound_after_unification() {
        let mut tt = TypeTable::new();
        let mut cs = ConstraintSet::new();
        let var = tt.fresh_psi();
        cs.add_psi_bound(FlatInt::Known(3), var, Span::dummy(), "if_int_tag x == 3");
        // later the variable unifies with a 2-constructor sum: violation
        let two = tt.psi_count(2);
        tt.unify_psi(var, two).unwrap();
        let v = cs.check_psi_bounds(&tt);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn gc_reachability_through_chain() {
        let mut tt = TypeTable::new();
        let mut cs = ConstraintSet::new();
        // alloc (gc) ⊑ helper ⊑ entry
        let alloc = tt.gc_gc();
        let helper = tt.fresh_gc();
        let entry = tt.fresh_gc();
        let other = tt.fresh_gc();
        cs.add_gc_edge(alloc, helper);
        cs.add_gc_edge(helper, entry);
        let sol = cs.solve_gc(&mut tt);
        assert!(sol.may_gc(&tt, alloc));
        assert!(sol.may_gc(&tt, helper));
        assert!(sol.may_gc(&tt, entry));
        assert!(!sol.may_gc(&tt, other));
    }

    #[test]
    fn gc_solution_respects_unification_aliases() {
        let mut tt = TypeTable::new();
        let mut cs = ConstraintSet::new();
        let alloc = tt.gc_gc();
        let a = tt.fresh_gc();
        let b = tt.fresh_gc();
        cs.add_gc_edge(alloc, a);
        tt.unify_gc(a, b); // b aliases a
        let sol = cs.solve_gc(&mut tt);
        assert!(sol.may_gc(&tt, b));
    }

    #[test]
    fn overlay_indices_are_continuous_with_base() {
        let mut tt = TypeTable::new();
        let mut base = ConstraintSet::new();
        let a = tt.gc_gc();
        let b = tt.fresh_gc();
        base.add_gc_edge(a, b);
        base.add_psi_bound(FlatInt::Known(0), tt.psi_top(), Span::dummy(), "base");
        let base = Arc::new(base);

        let mut view = ConstraintSet::overlay(base.clone());
        assert_eq!(view.gc_edge_count(), 1);
        assert_eq!(view.psi_bound_count(), 1);
        let c = tt.fresh_gc();
        view.add_gc_edge(b, c);
        let over = tt.psi_count(2);
        view.add_psi_bound(FlatInt::Known(5), over, Span::dummy(), "local");
        assert_eq!(view.gc_edge_count(), 2);
        assert_eq!(view.gc_edges_from(1).collect::<Vec<_>>(), vec![(b, c)]);
        assert_eq!(view.psi_bounds_from(1).count(), 1);

        // solving sees base and local edges together
        let sol = view.solve_gc(&mut tt);
        assert!(sol.may_gc(&tt, c), "gc flows base → local edge");
        // checks see base and local bounds; only the local one violates
        assert_eq!(view.check_psi_bounds(&tt).len(), 1);
        // the shared base is untouched
        assert_eq!(base.gc_edge_count(), 1);
        assert_eq!(base.psi_bound_count(), 1);
    }

    #[test]
    fn nogc_stays_nogc_without_edges() {
        let mut tt = TypeTable::new();
        let cs = ConstraintSet::new();
        let n = tt.gc_nogc();
        let sol = cs.solve_gc(&mut tt);
        assert!(!sol.may_gc(&tt, n));
        assert_eq!(sol.gc_count(), 0);
    }
}
