//! Rendering multi-lingual types for diagnostics, in the paper's notation:
//! `(2, (⊤,∅) + (⊤,∅) × (⊤,∅))` for the running example's `type t`.

use crate::arena::TypeTable;
use crate::term::*;
use std::collections::HashSet;

impl TypeTable {
    /// Renders an `mt` in paper notation. Cycles print as `µ`.
    pub fn render_mt(&self, id: MtId) -> String {
        let mut seen = HashSet::new();
        self.render_mt_rec(id, &mut seen)
    }

    fn render_mt_rec(&self, id: MtId, seen: &mut HashSet<u32>) -> String {
        let id = self.find_mt(id);
        if !seen.insert(id.as_raw()) {
            return "µ".to_string();
        }
        let out = match self.mt_node(id) {
            MtNode::Var => format!("α{}", id.as_raw()),
            MtNode::Fun(params, ret) => {
                let mut s = String::new();
                for p in params {
                    s.push_str(&self.render_mt_rec(*p, seen));
                    s.push_str(" → ");
                }
                s.push_str(&self.render_mt_rec(*ret, seen));
                s
            }
            MtNode::Custom(ct) => format!("{} custom", self.render_ct_rec(*ct, seen)),
            MtNode::Rep(psi, sigma) => {
                format!("({}, {})", self.render_psi(*psi), self.render_sigma_rec(*sigma, seen))
            }
            MtNode::Abstract { name, .. } => name.clone(),
            MtNode::Link(_) => unreachable!("resolved"),
        };
        seen.remove(&id.as_raw());
        out
    }

    /// Renders a `ct` in paper notation.
    pub fn render_ct(&self, id: CtId) -> String {
        let mut seen = HashSet::new();
        self.render_ct_rec(id, &mut seen)
    }

    fn render_ct_rec(&self, id: CtId, seen: &mut HashSet<u32>) -> String {
        let id = self.find_ct(id);
        match self.ct_node(id) {
            CtNode::Var => format!("?c{}", id.as_raw()),
            CtNode::Void => "void".into(),
            CtNode::Int => "int".into(),
            CtNode::Float => "double".into(),
            CtNode::Value(mt) => format!("{} value", self.render_mt_rec(*mt, seen)),
            CtNode::Ptr(inner) => format!("{} *", self.render_ct_rec(*inner, seen)),
            CtNode::Named(n) => n.clone(),
            CtNode::Fun(params, ret, gc) => {
                let ps: Vec<String> = params.iter().map(|p| self.render_ct_rec(*p, seen)).collect();
                format!(
                    "({}) →{} {}",
                    ps.join(" × "),
                    self.render_gc(*gc),
                    self.render_ct_rec(*ret, seen)
                )
            }
            CtNode::Link(_) => unreachable!("resolved"),
        }
    }

    /// Renders a `Ψ` bound.
    pub fn render_psi(&self, id: PsiId) -> String {
        let id = self.find_psi(id);
        match self.psi_node(id) {
            PsiNode::Var => format!("ψ{}", id.as_raw()),
            PsiNode::Count(n) => n.to_string(),
            PsiNode::Top => "⊤".into(),
            PsiNode::Link(_) => unreachable!("resolved"),
        }
    }

    /// Renders a `Σ` row.
    pub fn render_sigma(&self, id: SigmaId) -> String {
        let mut seen = HashSet::new();
        self.render_sigma_rec(id, &mut seen)
    }

    fn render_sigma_rec(&self, id: SigmaId, seen: &mut HashSet<u32>) -> String {
        let mut parts = Vec::new();
        let mut cur = self.find_sigma(id);
        let mut guard = 0usize;
        loop {
            match self.sigma_node(cur) {
                SigmaNode::Nil => break,
                SigmaNode::Var => {
                    parts.push(format!("σ{}", cur.as_raw()));
                    break;
                }
                SigmaNode::Cons(head, tail) => {
                    parts.push(self.render_pi_rec(head, seen));
                    cur = self.find_sigma(tail);
                }
                SigmaNode::Link(_) => unreachable!("resolved"),
            }
            guard += 1;
            if guard > self.sigmas.len() {
                parts.push("µ".into());
                break;
            }
        }
        if parts.is_empty() {
            "∅".into()
        } else {
            parts.join(" + ")
        }
    }

    /// Renders a `Π` row.
    pub fn render_pi(&self, id: PiId) -> String {
        let mut seen = HashSet::new();
        self.render_pi_rec(id, &mut seen)
    }

    fn render_pi_rec(&self, id: PiId, seen: &mut HashSet<u32>) -> String {
        let mut parts = Vec::new();
        let mut cur = self.find_pi(id);
        let mut guard = 0usize;
        loop {
            match self.pi_node(cur) {
                PiNode::Nil => break,
                PiNode::Var => {
                    parts.push(format!("π{}", cur.as_raw()));
                    break;
                }
                PiNode::Array(elem) => {
                    parts.push(format!("{}[]", self.render_mt_rec(elem, seen)));
                    break;
                }
                PiNode::Cons(head, tail) => {
                    parts.push(self.render_mt_rec(head, seen));
                    cur = self.find_pi(tail);
                }
                PiNode::Link(_) => unreachable!("resolved"),
            }
            guard += 1;
            if guard > self.pis.len() {
                parts.push("µ".into());
                break;
            }
        }
        if parts.is_empty() {
            "∅".into()
        } else if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            parts.join(" × ")
        }
    }

    /// Renders a GC effect.
    pub fn render_gc(&self, id: GcId) -> String {
        let id = self.find_gc(id);
        match self.gc_node(id) {
            GcNode::Var => format!("γ{}", id.as_raw()),
            GcNode::Gc => "gc".into(),
            GcNode::NoGc => "nogc".into(),
            GcNode::Link(_) => unreachable!("resolved"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_running_example_type() {
        let mut tt = TypeTable::new();
        // type t = A of int | B | C of int * int | D
        let mk_int = |tt: &mut TypeTable| {
            let p = tt.psi_top();
            let s = tt.sigma_nil();
            tt.mt_rep(p, s)
        };
        let i0 = mk_int(&mut tt);
        let i1 = mk_int(&mut tt);
        let i2 = mk_int(&mut tt);
        let pa = tt.pi_closed(&[i0]);
        let pc = tt.pi_closed(&[i1, i2]);
        let sig = tt.sigma_closed(&[pa, pc]);
        let psi = tt.psi_count(2);
        let t = tt.mt_rep(psi, sig);
        assert_eq!(tt.render_mt(t), "(2, (⊤, ∅) + (⊤, ∅) × (⊤, ∅))");
    }

    #[test]
    fn renders_unit_and_int() {
        let mut tt = TypeTable::new();
        let p1 = tt.psi_count(1);
        let s1 = tt.sigma_nil();
        let unit = tt.mt_rep(p1, s1);
        assert_eq!(tt.render_mt(unit), "(1, ∅)");
        let pt = tt.psi_top();
        let s2 = tt.sigma_nil();
        let int = tt.mt_rep(pt, s2);
        assert_eq!(tt.render_mt(int), "(⊤, ∅)");
    }

    #[test]
    fn renders_cyclic_type_with_mu() {
        let mut tt = TypeTable::new();
        let elem = tt.mt_abstract("string", true);
        let knot = tt.fresh_mt();
        let pi = tt.pi_closed(&[elem, knot]);
        let sig = tt.sigma_closed(&[pi]);
        let psi = tt.psi_count(1);
        let list = tt.mt_rep(psi, sig);
        tt.set_mt(knot, MtNode::Link(list));
        let s = tt.render_mt(list);
        assert!(s.contains('µ'), "{s}");
        assert!(s.contains("string"), "{s}");
    }

    #[test]
    fn renders_ct_forms() {
        let mut tt = TypeTable::new();
        let i = tt.ct_int();
        let p = tt.ct_ptr(i);
        assert_eq!(tt.render_ct(p), "int *");
        let g = tt.gc_gc();
        let v = tt.ct_void();
        let f = tt.ct_fun(vec![p], v, g);
        assert_eq!(tt.render_ct(f), "(int *) →gc void");
        let m = tt.fresh_mt();
        let val = tt.ct_value(m);
        assert!(tt.render_ct(val).ends_with(" value"));
    }

    #[test]
    fn renders_open_rows_with_variables() {
        let mut tt = TypeTable::new();
        let sig = tt.fresh_sigma();
        let _ = tt.sigma_at(sig, 0).unwrap();
        let s = tt.render_sigma(sig);
        assert!(s.contains('π'), "{s}");
        assert!(s.contains('σ'), "{s}");
    }

    #[test]
    fn renders_custom() {
        let mut tt = TypeTable::new();
        let n = tt.ct_named("gzFile");
        let p = tt.ct_ptr(n);
        let c = tt.mt_custom(p);
        assert_eq!(tt.render_mt(c), "gzFile * custom");
    }
}
