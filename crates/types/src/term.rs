//! Node sorts and ids for the multi-lingual type language (Figure 3).
//!
//! ```text
//! ct ::= void | int | mt value | ct * | ct × … × ct →GC ct
//! GC ::= γ | gc | nogc
//! mt ::= α | mt → mt | ct custom | (Ψ, Σ)
//! Ψ  ::= ψ | n | ⊤
//! Σ  ::= σ | ∅ | Π + Σ
//! Π  ::= π | ∅ | mt × Π
//! ```
//!
//! All sorts live in one [`crate::TypeTable`] arena as union-find nodes; the
//! ids below are typed indices into it. `Σ` and `Π` are *rows* in the sense
//! of Rémy: a row is either closed (`Nil`-terminated) or open (ends in a
//! row variable), and open rows grow during inference as the C code is
//! observed testing tags and reading fields.

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Raw arena index.
            pub fn as_raw(self) -> u32 {
                self.0
            }

            /// Rebuilds the id from a raw arena index. The index must come
            /// from [`Self::as_raw`] against the same [`crate::TypeTable`]
            /// (or a clone sharing its base prefix, as the parallel
            /// inference workers do).
            pub fn from_raw(raw: u32) -> Self {
                $name(raw)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

define_id!(
    /// An extended OCaml type `mt`.
    MtId
);
define_id!(
    /// An extended C type `ct`.
    CtId
);
define_id!(
    /// An unboxed-value bound `Ψ`.
    PsiId
);
define_id!(
    /// A sum row `Σ`.
    SigmaId
);
define_id!(
    /// A product row `Π`.
    PiId
);
define_id!(
    /// A garbage-collection effect `GC`.
    GcId
);

/// Nodes of sort `mt`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MtNode {
    /// An unbound type variable `α`.
    Var,
    /// Union-find forwarding link.
    Link(MtId),
    /// OCaml function type `mt₁ → … → mtₙ → mt` (uncurried spine).
    Fun(Vec<MtId>, MtId),
    /// C data embedded in OCaml: `ct custom`.
    Custom(CtId),
    /// A representational type `(Ψ, Σ)`.
    Rep(PsiId, SigmaId),
    /// A nominal abstract type (e.g. `string`, `float`, a user opaque
    /// type). `heap` records whether its values live in the OCaml heap,
    /// which matters for the GC-root analysis.
    Abstract {
        /// Nominal name; abstract types unify only with themselves.
        name: String,
        /// Whether values of this type are heap-allocated blocks.
        heap: bool,
    },
}

/// Nodes of sort `ct`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtNode {
    /// An unknown C type (used for unanalyzable casts).
    Var,
    /// Union-find forwarding link.
    Link(CtId),
    /// `void`.
    Void,
    /// Any C integer type (`int`, `long`, `char`, …).
    Int,
    /// Any C floating-point type.
    Float,
    /// `mt value`: OCaml data seen from C.
    Value(MtId),
    /// `ct *`.
    Ptr(CtId),
    /// A nominal C type (struct/union/typedef we treat opaquely).
    Named(String),
    /// `ct₁ × … × ctₙ →GC ct`.
    Fun(Vec<CtId>, CtId, GcId),
}

/// Nodes of sort `Ψ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PsiNode {
    /// An unbound variable `ψ`.
    Var,
    /// Union-find forwarding link.
    Link(PsiId),
    /// Exactly `n` nullary constructors.
    Count(u32),
    /// `⊤`: any integer (the type is `int`-like).
    Top,
}

/// Nodes of sort `Σ` (sum rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigmaNode {
    /// An unbound row variable `σ`.
    Var,
    /// Union-find forwarding link.
    Link(SigmaId),
    /// The empty row `∅`.
    Nil,
    /// `Π + Σ`.
    Cons(PiId, SigmaId),
}

/// Nodes of sort `Π` (product rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PiNode {
    /// An unbound row variable `π`.
    Var,
    /// Union-find forwarding link.
    Link(PiId),
    /// The empty row `∅`.
    Nil,
    /// `mt × Π`.
    Cons(MtId, PiId),
    /// Extension beyond the paper: a block whose every field has the same
    /// type and whose length is statically unknown (`'a array`).
    Array(MtId),
}

/// Nodes of sort `GC`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcNode {
    /// An effect variable `γ`.
    Var,
    /// Union-find forwarding link.
    Link(GcId),
    /// May invoke the OCaml garbage collector.
    Gc,
    /// Definitely does not invoke the collector.
    NoGc,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_sort() {
        assert_eq!(MtId(3).to_string(), "MtId3");
        assert_eq!(GcId(0).to_string(), "GcId0");
    }

    #[test]
    fn id_raw_roundtrip() {
        assert_eq!(PsiId(42).as_raw(), 42);
        assert_eq!(SigmaId(7).as_raw(), 7);
        assert_eq!(PiId(9).as_raw(), 9);
        assert_eq!(CtId(1).as_raw(), 1);
    }

    #[test]
    fn nodes_compare_structurally() {
        assert_eq!(PsiNode::Count(2), PsiNode::Count(2));
        assert_ne!(PsiNode::Count(2), PsiNode::Top);
        assert_eq!(
            MtNode::Abstract { name: "string".into(), heap: true },
            MtNode::Abstract { name: "string".into(), heap: true }
        );
    }
}
