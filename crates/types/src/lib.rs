//! The multi-lingual type language of Furr & Foster's *Checking Type
//! Safety of Foreign Function Calls* (PLDI 2005), with unification and
//! constraint solving.
//!
//! The grammar (the paper's Figure 3) embeds OCaml types in C types and
//! vice-versa:
//!
//! ```text
//! ct ::= void | int | mt value | ct * | ct × … × ct →GC ct
//! GC ::= γ | gc | nogc
//! mt ::= α | mt → mt | ct custom | (Ψ, Σ)
//! Ψ  ::= ψ | n | ⊤        (bound on unboxed values)
//! Σ  ::= σ | ∅ | Π + Σ    (boxed constructors, one product per tag)
//! Π  ::= π | ∅ | mt × Π   (fields of a structured block)
//! ```
//!
//! The central entry point is [`TypeTable`], an arena + union-find over all
//! six sorts, providing:
//!
//! * constructors (`mt_rep`, `ct_value`, `sigma_cons`, …) used by the
//!   OCaml-side translation `ρ`/`Φ` and the C-side mapping `η`;
//! * [`TypeTable::unify_mt`] / [`TypeTable::unify_ct`] — destructive
//!   unification with row growth and equirecursive cycle handling;
//! * [`TypeTable::sigma_at`] / [`TypeTable::pi_at`] — row access that grows
//!   open rows, implementing the side conditions of (Val Deref Exp),
//!   (Add Val Exp), (If sum tag) and friends;
//! * rendering of resolved types in paper notation for diagnostics.
//!
//! Deferred constraints (`T + 1 ≤ Ψ`, GC effect edges) accumulate in a
//! [`ConstraintSet`] and are discharged after unification, exactly as
//! §3.3.3 prescribes.
//!
//! The flow-sensitive part of the system — the `[B{I}]{T}` shapes of
//! §3.3 — lives in [`lattice`].
//!
//! # Examples
//!
//! Inferring that an observed tag test is compatible with
//! `type t = A of int | B | C of int * int | D`:
//!
//! ```
//! use ffisafe_types::{TypeTable, PsiNode};
//!
//! let mut tt = TypeTable::new();
//! // The C code tested `if (Tag_val(x) == 1)`: x's type grows a row.
//! let sigma = tt.fresh_sigma();
//! let psi = tt.fresh_psi();
//! let observed = tt.mt_rep(psi, sigma);
//! let _pi1 = tt.sigma_at(sigma, 1).unwrap();
//!
//! // The declared type t: (2, (⊤,∅) + (⊤,∅) × (⊤,∅)).
//! let mk_int = |tt: &mut TypeTable| { let p = tt.psi_top(); let s = tt.sigma_nil(); tt.mt_rep(p, s) };
//! let (a, c1, c2) = (mk_int(&mut tt), mk_int(&mut tt), mk_int(&mut tt));
//! let pa = tt.pi_closed(&[a]);
//! let pc = tt.pi_closed(&[c1, c2]);
//! let sig_t = tt.sigma_closed(&[pa, pc]);
//! let psi_t = tt.psi_count(2);
//! let t = tt.mt_rep(psi_t, sig_t);
//!
//! tt.unify_mt(observed, t).unwrap();
//! assert!(matches!(tt.psi_node(psi), PsiNode::Count(2)));
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod constraints;
pub mod display;
pub mod lattice;
pub mod term;
pub mod unify;

pub use arena::{FrozenTypeTable, TypeTable};
pub use constraints::{ConstraintSet, GcSolution, PsiBound, PsiViolation};
pub use lattice::{Boxedness, FlatInt, Shape};
pub use term::{
    CtId, CtNode, GcId, GcNode, MtId, MtNode, PiId, PiNode, PsiId, PsiNode, SigmaId, SigmaNode,
};
pub use unify::{RowError, UnifyError};
