//! The flow-sensitive lattices of §3.3: boxedness `B`, offset `I` and
//! tag/value `T`, combined into shapes `[B{I}]{T}`.
//!
//! ```text
//! B ::= boxed | unboxed | ⊤ | ⊥          ⊥ ⊑ boxed ⊑ ⊤, ⊥ ⊑ unboxed ⊑ ⊤
//! I, T ::= n | ⊤ | ⊥                      ⊥ ⊑ n ⊑ ⊤
//! ```
//!
//! Arithmetic on `I`/`T` extends integer arithmetic with
//! `⊤ aop x = ⊤` and `⊥ aop x = ⊥` (Figure 6, (AOP Exp)).

use std::fmt;

/// The boxedness lattice `B`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Boxedness {
    /// Unreachable / no information yet.
    Bot,
    /// Definitely a pointer into the OCaml heap.
    Boxed,
    /// Definitely an immediate (tagged integer).
    Unboxed,
    /// Could be either.
    Top,
}

impl Boxedness {
    /// Least upper bound.
    pub fn join(self, other: Boxedness) -> Boxedness {
        use Boxedness::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Top, _) | (_, Top) => Top,
            (Boxed, Boxed) => Boxed,
            (Unboxed, Unboxed) => Unboxed,
            (Boxed, Unboxed) | (Unboxed, Boxed) => Top,
        }
    }

    /// Partial-order test `self ⊑ other`.
    pub fn leq(self, other: Boxedness) -> bool {
        self.join(other) == other
    }
}

impl fmt::Display for Boxedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Boxedness::Bot => "⊥",
            Boxedness::Boxed => "boxed",
            Boxedness::Unboxed => "unboxed",
            Boxedness::Top => "⊤",
        };
        f.write_str(s)
    }
}

/// The flat integer lattice used for offsets `I` and tags/values `T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlatInt {
    /// Unreachable / no information yet.
    Bot,
    /// A known integer.
    Known(i64),
    /// Unknown.
    Top,
}

impl FlatInt {
    /// Least upper bound.
    pub fn join(self, other: FlatInt) -> FlatInt {
        use FlatInt::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Top, _) | (_, Top) => Top,
            (Known(a), Known(b)) => {
                if a == b {
                    Known(a)
                } else {
                    Top
                }
            }
        }
    }

    /// Partial-order test `self ⊑ other`.
    pub fn leq(self, other: FlatInt) -> bool {
        self.join(other) == other
    }

    /// Applies a binary integer operation, extended with
    /// `⊥ aop x = ⊥` and otherwise `⊤ aop x = ⊤`.
    ///
    /// Note `⊥` is absorbing even against `⊤`, matching the paper's
    /// convention that unreachable code stays unreachable.
    pub fn apply2(self, other: FlatInt, op: impl FnOnce(i64, i64) -> Option<i64>) -> FlatInt {
        use FlatInt::*;
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            (Top, _) | (_, Top) => Top,
            (Known(a), Known(b)) => match op(a, b) {
                Some(v) => Known(v),
                None => Top,
            },
        }
    }

    /// The arithmetic of the paper's `aop` grammar: `+ - * == != < <= > >=`
    /// plus division/modulo/bit operations used by real glue code. Unknown
    /// operators conservatively produce `⊤` on known operands.
    pub fn aop(self, op: &str, other: FlatInt) -> FlatInt {
        self.apply2(other, |a, b| match op {
            "+" => a.checked_add(b),
            "-" => a.checked_sub(b),
            "*" => a.checked_mul(b),
            "/" => a.checked_div(b),
            "%" => a.checked_rem(b),
            "==" => Some((a == b) as i64),
            "!=" => Some((a != b) as i64),
            "<" => Some((a < b) as i64),
            "<=" => Some((a <= b) as i64),
            ">" => Some((a > b) as i64),
            ">=" => Some((a >= b) as i64),
            "&" => Some(a & b),
            "|" => Some(a | b),
            "^" => Some(a ^ b),
            "<<" => a.checked_shl(u32::try_from(b).ok()?),
            ">>" => a.checked_shr(u32::try_from(b).ok()?),
            _ => None,
        })
    }

    /// Returns the known integer, if any.
    pub fn known(self) -> Option<i64> {
        match self {
            FlatInt::Known(n) => Some(n),
            _ => None,
        }
    }
}

impl fmt::Display for FlatInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatInt::Bot => f.write_str("⊥"),
            FlatInt::Known(n) => write!(f, "{n}"),
            FlatInt::Top => f.write_str("⊤"),
        }
    }
}

/// A flow-sensitive shape `[B{I}]{T}` attached to a flow-insensitive `ct`.
///
/// Meaning depends on the `ct` it decorates (§3.3): for `value` types `B`
/// is boxedness, `I` the offset into a structured block and `T` the tag
/// (boxed) or immediate value (unboxed); for `int`, `B = ⊤`, `I = 0`, `T`
/// the integer value; for anything else `B = T = ⊤`, `I = 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Boxedness component.
    pub b: Boxedness,
    /// Offset component.
    pub i: FlatInt,
    /// Tag/value component.
    pub t: FlatInt,
}

impl Shape {
    /// `[B{I}]{T}` constructor.
    pub fn new(b: Boxedness, i: FlatInt, t: FlatInt) -> Self {
        Shape { b, i, t }
    }

    /// The unconstrained-but-safe shape `[⊤{0}]{⊤}` given to parameters and
    /// heap reads.
    pub fn unknown() -> Self {
        Shape { b: Boxedness::Top, i: FlatInt::Known(0), t: FlatInt::Top }
    }

    /// The unreachable shape `[⊥{⊥}]{⊥}` produced by `reset(Γ)`.
    pub fn bottom() -> Self {
        Shape { b: Boxedness::Bot, i: FlatInt::Bot, t: FlatInt::Bot }
    }

    /// Shape of the C integer literal `n`: `[⊤{0}]{n}`.
    pub fn int_const(n: i64) -> Self {
        Shape { b: Boxedness::Top, i: FlatInt::Known(0), t: FlatInt::Known(n) }
    }

    /// Pointwise least upper bound.
    pub fn join(self, other: Shape) -> Shape {
        Shape { b: self.b.join(other.b), i: self.i.join(other.i), t: self.t.join(other.t) }
    }

    /// Pointwise partial order.
    pub fn leq(self, other: Shape) -> bool {
        self.b.leq(other.b) && self.i.leq(other.i) && self.t.leq(other.t)
    }

    /// A value is *safe* when its offset is statically zero — it is either
    /// unboxed or points at the first element of a structured block (§3.3).
    pub fn is_safe(self) -> bool {
        matches!(self.i, FlatInt::Known(0) | FlatInt::Bot)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}{{{}}}]{{{}}}", self.b, self.i, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_b() -> Vec<Boxedness> {
        vec![Boxedness::Bot, Boxedness::Boxed, Boxedness::Unboxed, Boxedness::Top]
    }

    #[test]
    fn boxedness_join_table() {
        use Boxedness::*;
        assert_eq!(Boxed.join(Unboxed), Top);
        assert_eq!(Bot.join(Boxed), Boxed);
        assert_eq!(Unboxed.join(Unboxed), Unboxed);
        assert_eq!(Top.join(Bot), Top);
    }

    #[test]
    fn boxedness_order() {
        use Boxedness::*;
        assert!(Bot.leq(Boxed));
        assert!(Bot.leq(Unboxed));
        assert!(Boxed.leq(Top));
        assert!(!Boxed.leq(Unboxed));
        assert!(!Top.leq(Boxed));
    }

    #[test]
    fn flatint_join() {
        use FlatInt::*;
        assert_eq!(Known(3).join(Known(3)), Known(3));
        assert_eq!(Known(3).join(Known(4)), Top);
        assert_eq!(Bot.join(Known(5)), Known(5));
        assert_eq!(Top.join(Bot), Top);
    }

    #[test]
    fn flatint_arith() {
        use FlatInt::*;
        assert_eq!(Known(2).aop("+", Known(3)), Known(5));
        assert_eq!(Known(2).aop("==", Known(2)), Known(1));
        assert_eq!(Known(2).aop("==", Known(3)), Known(0));
        assert_eq!(Top.aop("+", Known(3)), Top);
        assert_eq!(Bot.aop("+", Top), Bot);
        assert_eq!(Known(1).aop("/", Known(0)), Top); // division by zero
        assert_eq!(Known(1).aop("??", Known(2)), Top); // unknown operator
    }

    #[test]
    fn shape_safety() {
        assert!(Shape::unknown().is_safe());
        assert!(Shape::int_const(7).is_safe());
        assert!(Shape::bottom().is_safe());
        let unsafe_shape = Shape::new(Boxedness::Boxed, FlatInt::Known(2), FlatInt::Known(0));
        assert!(!unsafe_shape.is_safe());
        let unknown_off = Shape::new(Boxedness::Boxed, FlatInt::Top, FlatInt::Top);
        assert!(!unknown_off.is_safe());
    }

    #[test]
    fn shape_join_pointwise() {
        let a = Shape::new(Boxedness::Boxed, FlatInt::Known(0), FlatInt::Known(1));
        let b = Shape::new(Boxedness::Unboxed, FlatInt::Known(0), FlatInt::Known(1));
        let j = a.join(b);
        assert_eq!(j.b, Boxedness::Top);
        assert_eq!(j.i, FlatInt::Known(0));
        assert_eq!(j.t, FlatInt::Known(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Shape::int_const(5).to_string(), "[⊤{0}]{5}");
        assert_eq!(Shape::bottom().to_string(), "[⊥{⊥}]{⊥}");
    }

    /// A representative sample of the (infinite) `FlatInt` domain; small
    /// enough that the lattice laws below can be checked exhaustively.
    fn all_flat() -> Vec<FlatInt> {
        let mut out = vec![FlatInt::Bot, FlatInt::Top];
        out.extend((-2i64..=2).map(FlatInt::Known));
        out
    }

    fn all_shapes() -> Vec<Shape> {
        let mut out = Vec::new();
        for &b in &all_b() {
            for &i in &[FlatInt::Bot, FlatInt::Known(0), FlatInt::Known(1), FlatInt::Top] {
                for &t in &[FlatInt::Bot, FlatInt::Known(0), FlatInt::Known(2), FlatInt::Top] {
                    out.push(Shape { b, i, t });
                }
            }
        }
        out
    }

    #[test]
    fn prop_boxedness_join_lattice() {
        let all = all_b();
        for &a in &all {
            for &b in &all {
                assert_eq!(a.join(b), b.join(a));
                assert_eq!(a.join(a), a);
                assert!(a.leq(a.join(b)));
                for &c in &all {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)));
                }
            }
        }
    }

    #[test]
    fn prop_flatint_join_lattice() {
        let all = all_flat();
        for &a in &all {
            for &b in &all {
                assert_eq!(a.join(b), b.join(a));
                assert_eq!(a.join(a), a);
                assert!(a.leq(a.join(b)));
                for &c in &all {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)));
                }
            }
        }
    }

    #[test]
    fn prop_shape_join_lattice() {
        let all = all_shapes();
        for &a in &all {
            for &b in &all {
                assert_eq!(a.join(b), b.join(a));
                assert_eq!(a.join(a), a);
                assert!(a.leq(a.join(b)));
                assert!(b.leq(a.join(b)));
            }
        }
        // associativity over a coarser sample (the full cube is 64^3)
        let sample: Vec<Shape> = all.iter().copied().step_by(5).collect();
        for &a in &sample {
            for &b in &sample {
                for &c in &sample {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)));
                }
            }
        }
    }

    #[test]
    fn prop_leq_antisymmetric() {
        let all = all_shapes();
        for &a in &all {
            for &b in &all {
                if a.leq(b) && b.leq(a) {
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn prop_aop_strictness() {
        let all = all_flat();
        for &a in &all {
            for &b in &all {
                let r = a.aop("+", b);
                if a == FlatInt::Bot || b == FlatInt::Bot {
                    assert_eq!(r, FlatInt::Bot);
                } else if a == FlatInt::Top || b == FlatInt::Top {
                    assert_eq!(r, FlatInt::Top);
                }
            }
        }
    }
}
