//! Property-based tests of the unification engine's invariants:
//! idempotence, symmetry of success, row-growth consistency, and
//! stability of failures (a failed unification must fail again — the
//! engine's reporting pass depends on it).

use ffisafe_support::rng::Rng64;
use ffisafe_types::{MtId, PsiNode, TypeTable};

/// A recipe for building a random ground-ish `mt` in a table.
#[derive(Clone, Debug)]
enum MtRecipe {
    Int,
    Unit,
    Enum(u32),
    Abstract(&'static str),
    Sum { nullary: u32, products: Vec<Vec<MtRecipe>> },
}

fn build(tt: &mut TypeTable, r: &MtRecipe) -> MtId {
    match r {
        MtRecipe::Int => {
            let p = tt.psi_top();
            let s = tt.sigma_nil();
            tt.mt_rep(p, s)
        }
        MtRecipe::Unit => {
            let p = tt.psi_count(1);
            let s = tt.sigma_nil();
            tt.mt_rep(p, s)
        }
        MtRecipe::Enum(k) => {
            let p = tt.psi_count(*k);
            let s = tt.sigma_nil();
            tt.mt_rep(p, s)
        }
        MtRecipe::Abstract(name) => tt.mt_abstract(name, true),
        MtRecipe::Sum { nullary, products } => {
            let pis: Vec<_> = products
                .iter()
                .map(|fields| {
                    let fs: Vec<_> = fields.iter().map(|f| build(tt, f)).collect();
                    tt.pi_closed(&fs)
                })
                .collect();
            let sigma = tt.sigma_closed(&pis);
            let psi = tt.psi_count(*nullary);
            tt.mt_rep(psi, sigma)
        }
    }
}

fn gen_leaf(rng: &mut Rng64) -> MtRecipe {
    match rng.gen_range(0..5u32) {
        0 => MtRecipe::Int,
        1 => MtRecipe::Unit,
        2 => MtRecipe::Enum(rng.gen_range(0u32..4)),
        3 => MtRecipe::Abstract("string"),
        _ => MtRecipe::Abstract("float"),
    }
}

/// Random recipe with nesting depth up to 3 (mirrors the old
/// `prop_recursive(3, 24, 4, …)` strategy).
fn gen_recipe(rng: &mut Rng64, depth: u32) -> MtRecipe {
    if depth == 0 || rng.gen_bool(0.4) {
        return gen_leaf(rng);
    }
    let nullary = rng.gen_range(0u32..3);
    let n_products = rng.gen_range(1..3usize);
    let products = (0..n_products)
        .map(|_| {
            let n_fields = rng.gen_range(1..3usize);
            (0..n_fields).map(|_| gen_recipe(rng, depth - 1)).collect()
        })
        .collect();
    MtRecipe::Sum { nullary, products }
}

const CASES: usize = 256;

/// A type unifies with a structurally-identical copy of itself, and
/// re-unification is idempotent.
#[test]
fn prop_unify_reflexive_and_idempotent() {
    let mut rng = Rng64::seed_from_u64(0x0511F1);
    for _ in 0..CASES {
        let r = gen_recipe(&mut rng, 3);
        let mut tt = TypeTable::new();
        let a = build(&mut tt, &r);
        let b = build(&mut tt, &r);
        assert!(tt.unify_mt(a, b).is_ok(), "{r:?}");
        assert_eq!(tt.find_mt(a), tt.find_mt(b));
        assert!(tt.unify_mt(a, b).is_ok());
        assert!(tt.unify_mt(b, a).is_ok());
    }
}

/// Success is direction-independent: if a ∪ b succeeds in one table,
/// b ∪ a succeeds in a fresh one.
#[test]
fn prop_unify_symmetric() {
    let mut rng = Rng64::seed_from_u64(0x0511F2);
    for _ in 0..CASES {
        let ra = gen_recipe(&mut rng, 3);
        let rb = gen_recipe(&mut rng, 3);
        let mut t1 = TypeTable::new();
        let a1 = build(&mut t1, &ra);
        let b1 = build(&mut t1, &rb);
        let fwd = t1.unify_mt(a1, b1).is_ok();
        let mut t2 = TypeTable::new();
        let a2 = build(&mut t2, &ra);
        let b2 = build(&mut t2, &rb);
        let bwd = t2.unify_mt(b2, a2).is_ok();
        assert_eq!(fwd, bwd, "{ra:?} vs {rb:?}");
    }
}

/// Failures are stable: if unification fails once, re-running it fails
/// again (no partial merge may mask the error — the analysis reports
/// diagnostics on a second pass).
#[test]
fn prop_failed_unification_stays_failed() {
    let mut rng = Rng64::seed_from_u64(0x0511F3);
    for _ in 0..CASES {
        let ra = gen_recipe(&mut rng, 3);
        let rb = gen_recipe(&mut rng, 3);
        let mut tt = TypeTable::new();
        let a = build(&mut tt, &ra);
        let b = build(&mut tt, &rb);
        if tt.unify_mt(a, b).is_err() {
            assert!(tt.unify_mt(a, b).is_err(), "retry must fail too");
            assert_ne!(tt.find_mt(a), tt.find_mt(b));
        }
    }
}

/// A fresh variable unifies with anything and resolves to it.
#[test]
fn prop_variable_absorbs_any_type() {
    let mut rng = Rng64::seed_from_u64(0x0511F4);
    for _ in 0..CASES {
        let r = gen_recipe(&mut rng, 3);
        let mut tt = TypeTable::new();
        let v = tt.fresh_mt();
        let t = build(&mut tt, &r);
        assert!(tt.unify_mt(v, t).is_ok(), "{r:?}");
        assert_eq!(tt.find_mt(v), tt.find_mt(t));
    }
}

/// Open rows grown to arbitrary depth still unify with a declared sum
/// of sufficient size, and Ψ resolves to the declared count.
#[test]
fn prop_row_growth_consistent() {
    let mut rng = Rng64::seed_from_u64(0x0511F5);
    for _ in 0..CASES {
        let n_tags = rng.gen_range(1..6usize);
        let tags: Vec<usize> = (0..n_tags).map(|_| rng.gen_range(0..4usize)).collect();
        let mut tt = TypeTable::new();
        let sigma = tt.fresh_sigma();
        let psi = tt.fresh_psi();
        let observed = tt.mt_rep(psi, sigma);
        let mut max_tag = 0;
        for &t in &tags {
            let _ = tt.sigma_at(sigma, t).unwrap();
            max_tag = max_tag.max(t);
        }
        // declared sum with exactly max_tag + 1 products of 1 int field
        let declared = {
            let pis: Vec<_> = (0..=max_tag)
                .map(|_| {
                    let p = tt.psi_top();
                    let s = tt.sigma_nil();
                    let f = tt.mt_rep(p, s);
                    tt.pi_closed(&[f])
                })
                .collect();
            let s = tt.sigma_closed(&pis);
            let p = tt.psi_count(2);
            tt.mt_rep(p, s)
        };
        assert!(tt.unify_mt(observed, declared).is_ok());
        assert!(matches!(tt.psi_node(psi), PsiNode::Count(2)));
        assert_eq!(tt.sigma_len(sigma), Some(max_tag + 1));
    }
}

/// `pi_at` never hands out different field types for the same index.
#[test]
fn prop_pi_at_deterministic() {
    let mut rng = Rng64::seed_from_u64(0x0511F6);
    for _ in 0..CASES {
        let n = rng.gen_range(1..10usize);
        let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..6usize)).collect();
        let mut tt = TypeTable::new();
        let pi = tt.fresh_pi();
        let mut firsts = std::collections::HashMap::new();
        for &i in &indices {
            let f = tt.pi_at(pi, i).unwrap();
            let canon = tt.find_mt(f);
            let prev = firsts.entry(i).or_insert(canon);
            assert_eq!(*prev, canon, "index {i} changed field identity");
        }
    }
}

/// Unifying a type with a variable never changes what a *third*
/// structurally-distinct type does against it.
#[test]
fn prop_no_spooky_action() {
    let mut rng = Rng64::seed_from_u64(0x0511F7);
    for _ in 0..CASES {
        let ra = gen_recipe(&mut rng, 3);
        let rb = gen_recipe(&mut rng, 3);
        // expected outcome computed in a clean table
        let mut clean = TypeTable::new();
        let ca = build(&mut clean, &ra);
        let cb = build(&mut clean, &rb);
        let expected = clean.unify_mt(ca, cb).is_ok();
        // the same pair after unrelated variable churn in a shared table
        let mut tt = TypeTable::new();
        for _ in 0..5 {
            let v = tt.fresh_mt();
            let x = build(&mut tt, &MtRecipe::Int);
            tt.unify_mt(v, x).unwrap();
        }
        let a = build(&mut tt, &ra);
        let b = build(&mut tt, &rb);
        assert_eq!(tt.unify_mt(a, b).is_ok(), expected);
    }
}
