//! Robustness: the C frontend must never panic, whatever bytes it is fed —
//! the analysis runs on real-world code it does not control.

use ffisafe_cil::{lower, parser};
use ffisafe_support::rng::Rng64;
use ffisafe_support::FileId;

fn pipeline(src: &str) {
    let unit = parser::parse(FileId::from_raw(0), src);
    let _ = lower::lower_unit(&unit);
}

/// Arbitrary UTF-8 soup: lex + parse + lower must not panic.
#[test]
fn prop_parser_never_panics_on_arbitrary_input() {
    let mut rng = Rng64::seed_from_u64(0xC111);
    for _ in 0..512 {
        pipeline(&rng.arbitrary_text(200));
    }
}

/// C-shaped token soup: plausible glue fragments with random structure.
#[test]
fn prop_parser_never_panics_on_c_like_input() {
    const TOKS: &[&str] = &[
        "value",
        "int",
        "if",
        "while",
        "return",
        "switch",
        "case",
        "CAMLparam1",
        "CAMLreturn",
        "Val_int",
        "Int_val",
        "Field",
        "(",
        ")",
        "{",
        "}",
        ";",
        ",",
        "*",
        "=",
        "+",
        "x",
        "f",
        "0",
        "1",
    ];
    let mut rng = Rng64::seed_from_u64(0xC112);
    for _ in 0..512 {
        let n = rng.gen_range(0..80usize);
        let soup: Vec<&str> = (0..n).map(|_| TOKS[rng.gen_range(0..TOKS.len())]).collect();
        pipeline(&soup.join(" "));
    }
}

/// Truncations of a real glue function parse without panicking.
#[test]
fn prop_truncated_glue_never_panics() {
    let full = r#"
        value ml_examine(value x, value opts) {
            CAMLparam2(x, opts);
            CAMLlocal1(res);
            if (Is_long(x)) {
                switch (Int_val(x)) {
                case 0: res = Val_int(10); break;
                default: res = Val_int(0); break;
                }
            } else {
                res = Field(x, 0);
            }
            CAMLreturn(res);
        }
    "#;
    for cut in 0..400usize {
        let cut = cut.min(full.len());
        // cut at a char boundary
        let mut end = cut;
        while !full.is_char_boundary(end) {
            end -= 1;
        }
        pipeline(&full[..end]);
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    let mut src = String::from("int f(int x) { return ");
    for _ in 0..200 {
        src.push('(');
    }
    src.push('x');
    for _ in 0..200 {
        src.push(')');
    }
    src.push_str("; }");
    pipeline(&src);
}

#[test]
fn unbalanced_braces_terminate() {
    pipeline("value f(value x) { { { { return x; ");
    pipeline("}}}}}} value g(value y) { return y; }");
}
