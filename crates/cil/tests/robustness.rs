//! Robustness: the C frontend must never panic, whatever bytes it is fed —
//! the analysis runs on real-world code it does not control.

use ffisafe_cil::{lower, parser};
use ffisafe_support::FileId;
use proptest::prelude::*;

fn pipeline(src: &str) {
    let unit = parser::parse(FileId::from_raw(0), src);
    let _ = lower::lower_unit(&unit);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary UTF-8 soup: lex + parse + lower must not panic.
    #[test]
    fn prop_parser_never_panics_on_arbitrary_input(src in "\\PC{0,200}") {
        pipeline(&src);
    }

    /// C-shaped token soup: plausible glue fragments with random structure.
    #[test]
    fn prop_parser_never_panics_on_c_like_input(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("value".to_string()),
                Just("int".to_string()),
                Just("if".to_string()),
                Just("while".to_string()),
                Just("return".to_string()),
                Just("switch".to_string()),
                Just("case".to_string()),
                Just("CAMLparam1".to_string()),
                Just("CAMLreturn".to_string()),
                Just("Val_int".to_string()),
                Just("Int_val".to_string()),
                Just("Field".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(";".to_string()),
                Just(",".to_string()),
                Just("*".to_string()),
                Just("=".to_string()),
                Just("+".to_string()),
                Just("x".to_string()),
                Just("f".to_string()),
                Just("0".to_string()),
                Just("1".to_string()),
            ],
            0..80,
        )
    ) {
        pipeline(&toks.join(" "));
    }

    /// Truncations of a real glue function parse without panicking.
    #[test]
    fn prop_truncated_glue_never_panics(cut in 0usize..400) {
        let full = r#"
            value ml_examine(value x, value opts) {
                CAMLparam2(x, opts);
                CAMLlocal1(res);
                if (Is_long(x)) {
                    switch (Int_val(x)) {
                    case 0: res = Val_int(10); break;
                    default: res = Val_int(0); break;
                    }
                } else {
                    res = Field(x, 0);
                }
                CAMLreturn(res);
            }
        "#;
        let cut = cut.min(full.len());
        // cut at a char boundary
        let mut end = cut;
        while !full.is_char_boundary(end) {
            end -= 1;
        }
        pipeline(&full[..end]);
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    let mut src = String::from("int f(int x) { return ");
    for _ in 0..200 {
        src.push('(');
    }
    src.push('x');
    for _ in 0..200 {
        src.push(')');
    }
    src.push_str("; }");
    pipeline(&src);
}

#[test]
fn unbalanced_braces_terminate() {
    pipeline("value f(value x) { { { { return x; ");
    pipeline("}}}}}} value g(value y) { return y; }");
}
