//! Backward liveness analysis over the Figure 5 IR.
//!
//! The (App) rule's GC check needs `live(Γ)` — "all variables live at the
//! program point corresponding to Γ" — to decide which heap pointers must
//! have been registered before a call that may collect. The computation is
//! the standard backward may-analysis.

use crate::ir::*;
use std::collections::HashSet;

/// Per-statement live-variable sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Variables live immediately before each statement.
    pub live_in: Vec<HashSet<VarId>>,
    /// Variables live immediately after each statement.
    pub live_out: Vec<HashSet<VarId>>,
}

impl Liveness {
    /// Variables that remain live *across* statement `i` (live after it,
    /// minus any it defines) — the set that must survive a GC triggered at
    /// `i`.
    pub fn live_across(&self, func: &IrFunction, i: usize) -> HashSet<VarId> {
        let mut out = self.live_out[i].clone();
        for d in defs(&func.body[i].kind) {
            out.remove(&d);
        }
        out
    }
}

fn uses(kind: &IrStmtKind) -> HashSet<VarId> {
    let mut out = HashSet::new();
    match kind {
        IrStmtKind::Assign(lval, e) => {
            lval_uses(lval, &mut out);
            e.collect_vars(&mut out);
        }
        IrStmtKind::Call { dst, callee, args } => {
            if let Some(lval) = dst {
                lval_uses(lval, &mut out);
            }
            if let Callee::Pointer(p) = callee {
                p.collect_vars(&mut out);
            }
            for a in args {
                a.collect_vars(&mut out);
            }
        }
        IrStmtKind::If { cond, .. } => match cond {
            IrCond::Expr(e) => e.collect_vars(&mut out),
            IrCond::Unboxed(v)
            | IrCond::Boxed(v)
            | IrCond::SumTagEq(v, _)
            | IrCond::IntTagEq(v, _) => {
                out.insert(*v);
            }
        },
        IrStmtKind::Return(Some(e)) | IrStmtKind::CamlReturn(Some(e)) => {
            e.collect_vars(&mut out);
        }
        IrStmtKind::Protect(v) => {
            out.insert(*v);
        }
        IrStmtKind::Return(None)
        | IrStmtKind::CamlReturn(None)
        | IrStmtKind::Goto(_)
        | IrStmtKind::Mark(_)
        | IrStmtKind::Nop => {}
    }
    out
}

fn lval_uses(lval: &IrLval, out: &mut HashSet<VarId>) {
    if let IrLval::Mem { base, offset } = lval {
        base.collect_vars(out);
        offset.collect_vars(out);
    }
}

fn defs(kind: &IrStmtKind) -> Vec<VarId> {
    match kind {
        IrStmtKind::Assign(IrLval::Var(v), _) => vec![*v],
        IrStmtKind::Call { dst: Some(IrLval::Var(v)), .. } => vec![*v],
        _ => vec![],
    }
}

/// Computes liveness for one function.
pub fn compute(func: &IrFunction) -> Liveness {
    let n = func.body.len();
    let labels = func.label_positions();
    let mut live_in = vec![HashSet::new(); n];
    let mut live_out = vec![HashSet::new(); n];
    let use_sets: Vec<HashSet<VarId>> = func.body.iter().map(|s| uses(&s.kind)).collect();
    let def_sets: Vec<Vec<VarId>> = func.body.iter().map(|s| defs(&s.kind)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out: HashSet<VarId> = HashSet::new();
            for succ in func.successors(i, &labels) {
                if succ < n {
                    out.extend(live_in[succ].iter().copied());
                }
            }
            let mut inn = out.clone();
            for d in &def_sets[i] {
                inn.remove(d);
            }
            inn.extend(use_sets[i].iter().copied());
            if inn != live_in[i] || out != live_out[i] {
                live_in[i] = inn;
                live_out[i] = out;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_unit;
    use crate::parser::parse;
    use ffisafe_support::FileId;

    fn func(src: &str) -> IrFunction {
        let unit = parse(FileId::from_raw(0), src);
        assert!(unit.errors.is_empty(), "{:?}", unit.errors);
        lower_unit(&unit).functions.into_iter().next().unwrap()
    }

    fn var(f: &IrFunction, name: &str) -> VarId {
        VarId(f.locals.iter().position(|l| l.name == name).unwrap_or_else(|| {
            panic!("no local {name}: {:?}", f.locals.iter().map(|l| &l.name).collect::<Vec<_>>())
        }) as u32)
    }

    #[test]
    fn param_live_until_last_use() {
        let f = func(
            r#"
            value f(value a, value b) {
                value r;
                r = a;
                helper(0);
                r = b;
                return r;
            }
            "#,
        );
        let lv = compute(&f);
        let (a, b) = (var(&f, "a"), var(&f, "b"));
        // find the helper call
        let call_idx =
            f.body.iter().position(|s| matches!(&s.kind, IrStmtKind::Call { .. })).unwrap();
        let across = lv.live_across(&f, call_idx);
        assert!(!across.contains(&a), "a is dead after first assignment");
        assert!(across.contains(&b), "b is used after the call");
    }

    #[test]
    fn loop_keeps_counter_alive() {
        let f = func("int f(int n) { while (n > 0) { n = n - 1; } return n; }");
        let lv = compute(&f);
        let n = var(&f, "n");
        // n is live at the loop head test
        let if_idx = f.body.iter().position(|s| matches!(s.kind, IrStmtKind::If { .. })).unwrap();
        assert!(lv.live_in[if_idx].contains(&n));
    }

    #[test]
    fn dead_variable_not_live() {
        let f = func("int f(int x) { int dead = 5; return x; }");
        let lv = compute(&f);
        let d = var(&f, "dead");
        let ret =
            f.body.iter().position(|s| matches!(s.kind, IrStmtKind::Return(Some(_)))).unwrap();
        assert!(!lv.live_in[ret].contains(&d));
    }

    #[test]
    fn protect_counts_as_use() {
        let f = func("value f(value a) { CAMLparam1(a); CAMLreturn(Val_unit); }");
        let lv = compute(&f);
        let a = var(&f, "a");
        assert!(lv.live_in[0].contains(&a));
    }

    #[test]
    fn mem_store_uses_base_and_value() {
        let f = func("void f(value dst, value v) { Store_field(dst, 0, v); }");
        let lv = compute(&f);
        assert!(lv.live_in[0].contains(&var(&f, "dst")));
        assert!(lv.live_in[0].contains(&var(&f, "v")));
    }
}
