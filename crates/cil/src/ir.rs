//! The CIL-like intermediate representation of Figure 5.
//!
//! ```text
//! e    ::= n | lval | *e | e aop e | e +p e | (ct) e | Val_int e | Int_val e
//! lval ::= x | *(e +p n)
//! s    ::= s ; s | return e | CAMLreturn(e) | lval := f(e, …, e)
//!        | lval := e | L: s | goto L | if e then L
//!        | if unboxed(x) then L | if sum_tag(x) == n then L
//!        | if int_tag(x) == n then L
//! ```
//!
//! Statements are a flat sequence with labels; structured control flow is
//! compiled away by [`crate::lower`]. Conditionals *fall through* on false,
//! so `if cond then L` carries refinement both to `L` (condition true) and
//! to the next statement (condition false), exactly as Figure 7's rules
//! expect.

use crate::ctypes::CTypeExpr;
use ffisafe_support::Span;
use std::collections::{HashMap, HashSet};

/// Index of a local variable (parameters first) within one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Raw index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// A branch target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

/// FFI primitives that appear in expression position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrimOp {
    /// `Tag_val(e)` outside a recognized test — an unknown int.
    TagVal,
    /// `Is_long(e)` outside a recognized test.
    IsLong,
    /// `Is_block(e)` outside a recognized test.
    IsBlock,
    /// `String_val(e)` — `char *` of an OCaml string.
    StringVal,
    /// `Double_val(e)` — the `double` in a float block.
    DoubleVal,
    /// `Wosize_val(e)` — block size in words.
    WosizeVal,
    /// `Atom(t)` — the static zero-sized block with tag `t`.
    Atom,
}

/// An IR expression with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct IrExpr {
    /// Expression form.
    pub kind: IrExprKind,
    /// Source span.
    pub span: Span,
}

impl IrExpr {
    /// Creates an expression node.
    pub fn new(kind: IrExprKind, span: Span) -> Self {
        IrExpr { kind, span }
    }

    /// Convenience integer constant.
    pub fn int(n: i64, span: Span) -> Self {
        IrExpr::new(IrExprKind::Int(n), span)
    }

    /// Convenience variable reference.
    pub fn var(v: VarId, span: Span) -> Self {
        IrExpr::new(IrExprKind::Var(v), span)
    }

    /// If this expression is a plain variable, its id.
    pub fn as_var(&self) -> Option<VarId> {
        match self.kind {
            IrExprKind::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Collects every variable used in the expression into `out`.
    pub fn collect_vars(&self, out: &mut HashSet<VarId>) {
        match &self.kind {
            IrExprKind::Var(v) | IrExprKind::AddrOfVar(v) => {
                out.insert(*v);
            }
            IrExprKind::Int(_)
            | IrExprKind::Float
            | IrExprKind::Str(_)
            | IrExprKind::OpaqueInt
            | IrExprKind::Unknown => {}
            IrExprKind::Deref(e)
            | IrExprKind::Not(e)
            | IrExprKind::Neg(e)
            | IrExprKind::ValInt(e)
            | IrExprKind::IntVal(e)
            | IrExprKind::Cast(_, e) => e.collect_vars(out),
            IrExprKind::PtrAdd(a, b) | IrExprKind::Binop(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            IrExprKind::Prim(_, args) => args.iter().for_each(|a| a.collect_vars(out)),
        }
    }
}

/// Expression forms.
#[derive(Clone, Debug, PartialEq)]
pub enum IrExprKind {
    /// Integer constant.
    Int(i64),
    /// Floating constant (value not tracked).
    Float,
    /// String literal (a `char *`).
    Str(String),
    /// An integer of statically-unknown value (`sizeof`, struct reads …).
    OpaqueInt,
    /// Local variable.
    Var(VarId),
    /// `*e` — dispatches to (Val Deref) or (C Deref) on `e`'s inferred type.
    Deref(Box<IrExpr>),
    /// `e₁ +p e₂` — value or C pointer arithmetic, type-dispatched.
    PtrAdd(Box<IrExpr>, Box<IrExpr>),
    /// Arithmetic/comparison on integers.
    Binop(&'static str, Box<IrExpr>, Box<IrExpr>),
    /// Logical negation.
    Not(Box<IrExpr>),
    /// Arithmetic negation.
    Neg(Box<IrExpr>),
    /// `Val_int e`.
    ValInt(Box<IrExpr>),
    /// `Int_val e`.
    IntVal(Box<IrExpr>),
    /// `(ct) e`.
    Cast(CTypeExpr, Box<IrExpr>),
    /// `&x` — triggers the §5.1 address-of heuristics.
    AddrOfVar(VarId),
    /// FFI primitive in expression position.
    Prim(PrimOp, Vec<IrExpr>),
    /// An expression the frontend could not model; types as fresh.
    Unknown,
}

/// L-values: `x` or `*(e +p e)`.
#[derive(Clone, Debug, PartialEq)]
pub enum IrLval {
    /// A local variable.
    Var(VarId),
    /// A store through a pointer at an offset.
    Mem {
        /// Base address expression.
        base: IrExpr,
        /// Offset expression (0 for plain `*e`).
        offset: IrExpr,
    },
}

/// Call targets.
#[derive(Clone, Debug, PartialEq)]
pub enum Callee {
    /// A named function.
    Named(String),
    /// An unknown function pointer (imprecision per §5.1).
    Pointer(Box<IrExpr>),
}

/// Branch conditions. `Unboxed`/`Boxed`/`SumTagEq`/`IntTagEq` are the
/// syntactically-recognized dynamic tests of §3.2.
#[derive(Clone, Debug, PartialEq)]
pub enum IrCond {
    /// Branch if the integer expression is non-zero.
    Expr(IrExpr),
    /// `if unboxed(x)`: branch when `x` is an immediate.
    Unboxed(VarId),
    /// Branch when `x` is a pointer (the `Is_block` dual).
    Boxed(VarId),
    /// `if sum_tag(x) == n`.
    SumTagEq(VarId, i64),
    /// `if int_tag(x) == n`.
    IntTagEq(VarId, i64),
}

/// An IR statement with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct IrStmt {
    /// Statement form.
    pub kind: IrStmtKind,
    /// Source span.
    pub span: Span,
}

impl IrStmt {
    /// Creates a statement node.
    pub fn new(kind: IrStmtKind, span: Span) -> Self {
        IrStmt { kind, span }
    }
}

/// Statement forms of Figure 5.
#[derive(Clone, Debug, PartialEq)]
pub enum IrStmtKind {
    /// `lval := e`.
    Assign(IrLval, IrExpr),
    /// `lval := f(e…)` / bare call.
    Call {
        /// Destination, if any.
        dst: Option<IrLval>,
        /// Callee.
        callee: Callee,
        /// Arguments.
        args: Vec<IrExpr>,
    },
    /// `if cond then L` (falls through on false).
    If {
        /// Condition.
        cond: IrCond,
        /// Target label when the condition holds.
        target: Label,
    },
    /// `goto L`.
    Goto(Label),
    /// `L:` — label definition point.
    Mark(Label),
    /// `return e`.
    Return(Option<IrExpr>),
    /// `CAMLreturn(e)`.
    CamlReturn(Option<IrExpr>),
    /// `CAMLprotect(x)` — registration with the GC.
    Protect(VarId),
    /// No-op.
    Nop,
}

/// A local variable (parameters first).
#[derive(Clone, Debug, PartialEq)]
pub struct IrLocal {
    /// Source name (synthesized temporaries are `%tN`).
    pub name: String,
    /// Declared C type.
    pub ty: CTypeExpr,
    /// Whether this is a formal parameter.
    pub is_param: bool,
    /// Declaration span.
    pub span: Span,
}

/// A lowered function definition.
#[derive(Clone, Debug)]
pub struct IrFunction {
    /// Function name.
    pub name: String,
    /// Declared return type.
    pub ret: CTypeExpr,
    /// All locals; the first [`IrFunction::n_params`] are parameters.
    pub locals: Vec<IrLocal>,
    /// Number of parameters.
    pub n_params: usize,
    /// Flat statement sequence.
    pub body: Vec<IrStmt>,
    /// Number of labels allocated.
    pub n_labels: u32,
    /// Locals whose address was taken (heuristics of §5.1).
    pub address_taken: HashSet<VarId>,
    /// Whether the function was `static`.
    pub is_static: bool,
    /// Header span.
    pub span: Span,
}

impl IrFunction {
    /// Maps every label to the statement index of its `Mark`.
    pub fn label_positions(&self) -> HashMap<Label, usize> {
        let mut out = HashMap::new();
        for (i, s) in self.body.iter().enumerate() {
            if let IrStmtKind::Mark(l) = s.kind {
                out.insert(l, i);
            }
        }
        out
    }

    /// Successor statement indices of statement `i` (`len` = exit).
    pub fn successors(&self, i: usize, labels: &HashMap<Label, usize>) -> Vec<usize> {
        match &self.body[i].kind {
            IrStmtKind::Goto(l) => labels.get(l).copied().into_iter().collect(),
            IrStmtKind::Return(_) | IrStmtKind::CamlReturn(_) => vec![],
            IrStmtKind::If { target, .. } => {
                let mut out = vec![i + 1];
                if let Some(&t) = labels.get(target) {
                    out.push(t);
                }
                out
            }
            _ => vec![i + 1],
        }
    }

    /// The variable ids of the parameters.
    pub fn param_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.n_params as u32).map(VarId)
    }
}

/// A function prototype (declaration without body).
#[derive(Clone, Debug, PartialEq)]
pub struct IrPrototype {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CTypeExpr,
    /// Parameter types.
    pub params: Vec<CTypeExpr>,
    /// Span of the declaration.
    pub span: Span,
}

/// A lowered translation unit (or several merged ones).
#[derive(Clone, Debug, Default)]
pub struct IrProgram {
    /// Function definitions.
    pub functions: Vec<IrFunction>,
    /// Prototypes without definitions.
    pub prototypes: Vec<IrPrototype>,
    /// Global variables (name, type, span).
    pub globals: Vec<(String, CTypeExpr, Span)>,
    /// Notes about constructs the frontend had to approximate.
    pub notes: Vec<(Span, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_vars_walks_structure() {
        let s = Span::dummy();
        let e = IrExpr::new(
            IrExprKind::PtrAdd(
                Box::new(IrExpr::var(VarId(0), s)),
                Box::new(IrExpr::new(
                    IrExprKind::Binop(
                        "+",
                        Box::new(IrExpr::var(VarId(2), s)),
                        Box::new(IrExpr::int(1, s)),
                    ),
                    s,
                )),
            ),
            s,
        );
        let mut vars = HashSet::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, HashSet::from([VarId(0), VarId(2)]));
    }

    #[test]
    fn successors_of_control_statements() {
        let s = Span::dummy();
        let f = IrFunction {
            name: "f".into(),
            ret: CTypeExpr::Void,
            locals: vec![],
            n_params: 0,
            body: vec![
                IrStmt::new(
                    IrStmtKind::If { cond: IrCond::Unboxed(VarId(0)), target: Label(0) },
                    s,
                ),
                IrStmt::new(IrStmtKind::Goto(Label(1)), s),
                IrStmt::new(IrStmtKind::Mark(Label(0)), s),
                IrStmt::new(IrStmtKind::Mark(Label(1)), s),
                IrStmt::new(IrStmtKind::Return(None), s),
            ],
            n_labels: 2,
            address_taken: HashSet::new(),
            is_static: false,
            span: s,
        };
        let labels = f.label_positions();
        assert_eq!(labels[&Label(0)], 2);
        assert_eq!(f.successors(0, &labels), vec![1, 2]);
        assert_eq!(f.successors(1, &labels), vec![3]);
        assert_eq!(f.successors(4, &labels), Vec::<usize>::new());
    }
}
