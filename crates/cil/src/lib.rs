//! C frontend for `ffisafe` — the CIL-like substrate of the paper (§3.2,
//! §5.1).
//!
//! The paper's second tool is "built using CIL" and consumes C glue code in
//! the simplified form of Figure 5. This crate rebuilds that substrate from
//! scratch:
//!
//! * [`parser::parse`] — parses the C glue-code sublanguage (functions over
//!   `value`, full expressions, structured control flow, the
//!   `CAMLparam`/`CAMLlocal`/`CAMLreturn` macros);
//! * [`lower::lower_unit`] — compiles the AST to the flat, labeled IR of
//!   Figure 5 ([`ir`]), syntactically recognizing the dynamic tests
//!   (`Is_long`, `Tag_val(x) == n`, `switch (Tag_val(x))`, …);
//! * [`liveness::compute`] — backward liveness, needed by the (App) rule's
//!   GC-registration check.
//!
//! # Examples
//!
//! ```
//! use ffisafe_cil::{parser, lower};
//! use ffisafe_support::SourceMap;
//!
//! let src = r#"
//!     value ml_pair_first(value pair) {
//!         return Field(pair, 0);
//!     }
//! "#;
//! let mut sm = SourceMap::new();
//! let file = sm.add_file("glue.c", src);
//! let unit = parser::parse(file, src);
//! let program = lower::lower_unit(&unit);
//! assert_eq!(program.functions.len(), 1);
//! assert_eq!(program.functions[0].name, "ml_pair_first");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod ctypes;
pub mod ir;
pub mod lexer;
pub mod liveness;
pub mod lower;
pub mod parser;
pub mod token;

pub use ast::{CExpr, CExprKind, CFunction, CGlobal, CParam, CStmt, CStmtKind, CUnit};
pub use ctypes::CTypeExpr;
pub use ir::{
    Callee, IrCond, IrExpr, IrExprKind, IrFunction, IrLocal, IrLval, IrProgram, IrPrototype,
    IrStmt, IrStmtKind, Label, PrimOp, VarId,
};
pub use liveness::Liveness;
