//! AST of the C glue-code sublanguage, produced by [`crate::parser`] and
//! consumed by [`crate::lower`].

use crate::ctypes::CTypeExpr;
use ffisafe_support::Span;

/// A C expression with its span.
#[derive(Clone, Debug, PartialEq)]
pub struct CExpr {
    /// Expression form.
    pub kind: CExprKind,
    /// Source span.
    pub span: Span,
}

impl CExpr {
    /// Creates an expression node.
    pub fn new(kind: CExprKind, span: Span) -> Self {
        CExpr { kind, span }
    }
}

/// Expression forms.
#[derive(Clone, Debug, PartialEq)]
pub enum CExprKind {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Identifier (variable, function, or object-like macro).
    Ident(String),
    /// Function call `f(args…)` — `f` may be any expression (function
    /// pointers included).
    Call(Box<CExpr>, Vec<CExpr>),
    /// Array subscript `a[i]`.
    Index(Box<CExpr>, Box<CExpr>),
    /// Member access `s.f` / `p->f`.
    Member(Box<CExpr>, String, bool),
    /// Prefix unary operator (`*`, `&`, `-`, `!`, `~`, `++`, `--`).
    Unary(&'static str, Box<CExpr>),
    /// Postfix `++` / `--`.
    Postfix(Box<CExpr>, &'static str),
    /// Binary operator.
    Binary(&'static str, Box<CExpr>, Box<CExpr>),
    /// Assignment (`=` or compound like `+=`).
    Assign(&'static str, Box<CExpr>, Box<CExpr>),
    /// Conditional `c ? a : b`.
    Ternary(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    /// Type cast `(ty) e`.
    Cast(CTypeExpr, Box<CExpr>),
    /// `sizeof(ty)` or `sizeof e` — both collapse to an unknown int.
    Sizeof,
    /// Comma expression `a, b`.
    Comma(Box<CExpr>, Box<CExpr>),
}

/// A C statement with its span.
#[derive(Clone, Debug, PartialEq)]
pub struct CStmt {
    /// Statement form.
    pub kind: CStmtKind,
    /// Source span.
    pub span: Span,
}

impl CStmt {
    /// Creates a statement node.
    pub fn new(kind: CStmtKind, span: Span) -> Self {
        CStmt { kind, span }
    }
}

/// One `case` arm of a `switch`.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchCase {
    /// `Some(k)` for `case k:`, `None` for `default:`.
    pub value: Option<i64>,
    /// The statements of the arm (up to the next case label).
    pub body: Vec<CStmt>,
    /// Whether the arm ends by falling through to the next one.
    pub falls_through: bool,
}

/// Statement forms.
#[derive(Clone, Debug, PartialEq)]
pub enum CStmtKind {
    /// Local declaration `ty name = init;`.
    Decl {
        /// Declared type.
        ty: CTypeExpr,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<CExpr>,
    },
    /// Expression statement.
    Expr(CExpr),
    /// `if` with optional `else`.
    If {
        /// Condition.
        cond: CExpr,
        /// Then branch.
        then_branch: Vec<CStmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<CStmt>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: CExpr,
        /// Body.
        body: Vec<CStmt>,
    },
    /// `do … while` loop.
    DoWhile {
        /// Body.
        body: Vec<CStmt>,
        /// Condition.
        cond: CExpr,
    },
    /// `for` loop.
    For {
        /// Initialization statement.
        init: Option<Box<CStmt>>,
        /// Condition (absent = infinite).
        cond: Option<CExpr>,
        /// Step expression.
        step: Option<CExpr>,
        /// Body.
        body: Vec<CStmt>,
    },
    /// `switch`.
    Switch {
        /// Scrutinee.
        scrutinee: CExpr,
        /// Case arms in source order.
        cases: Vec<SwitchCase>,
    },
    /// `return e;`.
    Return(Option<CExpr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `goto l;`
    Goto(String),
    /// `l:` label.
    Label(String),
    /// `{ … }` block.
    Block(Vec<CStmt>),
    /// `CAMLparam…`/`CAMLlocal…` registration of `names`; `CAMLlocal` also
    /// declares the names as `value` locals (`declares = true`).
    CamlProtect {
        /// Registered variables.
        names: Vec<String>,
        /// Whether this macro declares the variables too.
        declares: bool,
    },
    /// `CAMLreturn(e)` / `CAMLreturn0`.
    CamlReturn(Option<CExpr>),
    /// An empty statement.
    Empty,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct CParam {
    /// Parameter name (may be empty in prototypes).
    pub name: String,
    /// Parameter type.
    pub ty: CTypeExpr,
}

/// A function definition or prototype.
#[derive(Clone, Debug, PartialEq)]
pub struct CFunction {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CTypeExpr,
    /// Parameters.
    pub params: Vec<CParam>,
    /// Body, when this is a definition.
    pub body: Option<Vec<CStmt>>,
    /// Whether the function was declared `static`.
    pub is_static: bool,
    /// Source span of the header.
    pub span: Span,
}

/// A global variable declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct CGlobal {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: CTypeExpr,
    /// Source span.
    pub span: Span,
}

/// A parsed C translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CUnit {
    /// Functions (definitions and prototypes) in source order.
    pub functions: Vec<CFunction>,
    /// Global variables.
    pub globals: Vec<CGlobal>,
    /// Recoverable parse problems.
    pub errors: Vec<(Span, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_construction() {
        let e = CExpr::new(CExprKind::Int(5), Span::dummy());
        assert_eq!(e.kind, CExprKind::Int(5));
    }

    #[test]
    fn function_shape() {
        let f = CFunction {
            name: "ml_f".into(),
            ret: CTypeExpr::Value,
            params: vec![CParam { name: "x".into(), ty: CTypeExpr::Value }],
            body: Some(vec![]),
            is_static: false,
            span: Span::dummy(),
        };
        assert_eq!(f.params.len(), 1);
        assert!(f.body.is_some());
    }
}
