//! Lowering from the C AST to the Figure 5 IR.
//!
//! Responsibilities:
//!
//! * compile structured control flow (`if`/`while`/`for`/`switch`) into
//!   labels and conditional fall-through branches;
//! * recognize dynamic tests syntactically — `Is_long(x)`, `Is_block(x)`,
//!   `Tag_val(x) == n`, `Int_val(x) == n` and `switch (Tag_val(x))` — and
//!   turn them into the `if unboxed` / `if sum_tag` / `if int_tag`
//!   primitives of §3.2 (this is the "syntactic pattern matching to
//!   identify tag and boxedness tests" of §5.1);
//! * translate FFI macros: `Val_int`/`Int_val` conversions, `Field` into
//!   value pointer arithmetic + dereference, `Store_field` into heap
//!   stores, `CAMLparam`/`CAMLlocal` into `CAMLprotect`, `CAMLreturn`;
//! * flatten side effects: nested calls, assignments, `++`/`--` and `?:`
//!   become statements on synthesized temporaries.

use crate::ast::*;
use crate::ctypes::CTypeExpr;
use crate::ir::*;
use ffisafe_support::Span;
use std::collections::{HashMap, HashSet};

/// Lowers a parsed translation unit.
pub fn lower_unit(unit: &CUnit) -> IrProgram {
    let mut program = IrProgram::default();
    for g in &unit.globals {
        program.globals.push((g.name.clone(), g.ty.clone(), g.span));
    }
    for f in &unit.functions {
        match &f.body {
            None => program.prototypes.push(IrPrototype {
                name: f.name.clone(),
                ret: f.ret.clone(),
                params: f.params.iter().map(|p| p.ty.clone()).collect(),
                span: f.span,
            }),
            Some(body) => {
                let mut ctx = FnLowerer::new(f, &mut program.notes);
                ctx.lower_body(body);
                program.functions.push(ctx.finish());
            }
        }
    }
    program
}

struct Scope {
    shadowed: Vec<(String, Option<VarId>)>,
}

struct FnLowerer<'a> {
    name: String,
    ret: CTypeExpr,
    locals: Vec<IrLocal>,
    n_params: usize,
    vars: HashMap<String, VarId>,
    scopes: Vec<Scope>,
    body: Vec<IrStmt>,
    next_label: u32,
    next_temp: u32,
    break_stack: Vec<Label>,
    continue_stack: Vec<Label>,
    named_labels: HashMap<String, Label>,
    address_taken: HashSet<VarId>,
    is_static: bool,
    span: Span,
    notes: &'a mut Vec<(Span, String)>,
}

impl<'a> FnLowerer<'a> {
    fn new(f: &CFunction, notes: &'a mut Vec<(Span, String)>) -> Self {
        let mut locals = Vec::new();
        let mut vars = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            let name = if p.name.is_empty() { format!("%arg{i}") } else { p.name.clone() };
            vars.insert(name.clone(), VarId(i as u32));
            locals.push(IrLocal { name, ty: p.ty.clone(), is_param: true, span: f.span });
        }
        FnLowerer {
            name: f.name.clone(),
            ret: f.ret.clone(),
            n_params: locals.len(),
            locals,
            vars,
            scopes: Vec::new(),
            body: Vec::new(),
            next_label: 0,
            next_temp: 0,
            break_stack: Vec::new(),
            continue_stack: Vec::new(),
            named_labels: HashMap::new(),
            address_taken: HashSet::new(),
            is_static: f.is_static,
            span: f.span,
            notes,
        }
    }

    fn finish(mut self) -> IrFunction {
        // guarantee an explicit exit so protection-set checks see it
        let needs_exit = !matches!(
            self.body.last().map(|s| &s.kind),
            Some(IrStmtKind::Return(_))
                | Some(IrStmtKind::CamlReturn(_))
                | Some(IrStmtKind::Goto(_))
        );
        if needs_exit {
            self.body.push(IrStmt::new(IrStmtKind::Return(None), self.span));
        }
        IrFunction {
            name: self.name,
            ret: self.ret,
            locals: self.locals,
            n_params: self.n_params,
            body: self.body,
            n_labels: self.next_label,
            address_taken: self.address_taken,
            is_static: self.is_static,
            span: self.span,
        }
    }

    // ---- helpers -----------------------------------------------------------

    fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    fn declare(&mut self, name: &str, ty: CTypeExpr, span: Span) -> VarId {
        let id = VarId(self.locals.len() as u32);
        let prev = self.vars.insert(name.to_string(), id);
        if let Some(scope) = self.scopes.last_mut() {
            scope.shadowed.push((name.to_string(), prev));
        }
        self.locals.push(IrLocal { name: name.to_string(), ty, is_param: false, span });
        id
    }

    fn fresh_temp(&mut self, ty: CTypeExpr, span: Span) -> VarId {
        let name = format!("%t{}", self.next_temp);
        self.next_temp += 1;
        let id = VarId(self.locals.len() as u32);
        self.locals.push(IrLocal { name, ty, is_param: false, span });
        id
    }

    fn lookup(&mut self, name: &str) -> Option<VarId> {
        self.vars.get(name).copied()
    }

    fn emit(&mut self, kind: IrStmtKind, span: Span) {
        self.body.push(IrStmt::new(kind, span));
    }

    fn note(&mut self, span: Span, msg: impl Into<String>) {
        self.notes.push((span, msg.into()));
    }

    fn label_for(&mut self, name: &str) -> Label {
        if let Some(&l) = self.named_labels.get(name) {
            return l;
        }
        let l = self.fresh_label();
        self.named_labels.insert(name.to_string(), l);
        l
    }

    // ---- statements ----------------------------------------------------------

    fn lower_body(&mut self, stmts: &[CStmt]) {
        for s in stmts {
            self.lower_stmt(s);
        }
    }

    fn lower_block(&mut self, stmts: &[CStmt]) {
        self.scopes.push(Scope { shadowed: Vec::new() });
        self.lower_body(stmts);
        let scope = self.scopes.pop().expect("scope stack balanced");
        for (name, prev) in scope.shadowed.into_iter().rev() {
            match prev {
                Some(v) => {
                    self.vars.insert(name, v);
                }
                None => {
                    self.vars.remove(&name);
                }
            }
        }
    }

    fn lower_stmt(&mut self, stmt: &CStmt) {
        let span = stmt.span;
        match &stmt.kind {
            CStmtKind::Empty => {}
            CStmtKind::Block(stmts) => self.lower_block(stmts),
            CStmtKind::Decl { ty, name, init } => {
                let var = self.declare(name, ty.clone(), span);
                if let Some(init) = init {
                    self.lower_assign_to(IrLval::Var(var), init, span);
                }
            }
            CStmtKind::Expr(e) => self.lower_expr_stmt(e, span),
            CStmtKind::Return(e) => {
                let ir = e.as_ref().map(|e| self.lower_expr(e));
                self.emit(IrStmtKind::Return(ir), span);
            }
            CStmtKind::CamlReturn(e) => {
                let ir = e.as_ref().map(|e| self.lower_expr(e));
                self.emit(IrStmtKind::CamlReturn(ir), span);
            }
            CStmtKind::CamlProtect { names, declares } => {
                for n in names {
                    let var = if *declares {
                        // CAMLlocal declares and registers; its Val_unit
                        // initialization is a macro artifact that must not
                        // constrain the variable's type
                        self.declare(n, CTypeExpr::Value, span)
                    } else {
                        match self.lookup(n) {
                            Some(v) => v,
                            None => {
                                self.note(span, format!("CAMLparam of unknown variable `{n}`"));
                                continue;
                            }
                        }
                    };
                    self.emit(IrStmtKind::Protect(var), span);
                }
            }
            CStmtKind::If { cond, then_branch, else_branch } => {
                let l_then = self.fresh_label();
                let l_else = self.fresh_label();
                let l_end = self.fresh_label();
                self.branch(cond, l_then, l_else, span);
                self.emit(IrStmtKind::Mark(l_then), span);
                self.lower_block(then_branch);
                self.emit(IrStmtKind::Goto(l_end), span);
                self.emit(IrStmtKind::Mark(l_else), span);
                self.lower_block(else_branch);
                self.emit(IrStmtKind::Mark(l_end), span);
            }
            CStmtKind::While { cond, body } => {
                let l_head = self.fresh_label();
                let l_body = self.fresh_label();
                let l_end = self.fresh_label();
                self.emit(IrStmtKind::Mark(l_head), span);
                self.branch(cond, l_body, l_end, span);
                self.emit(IrStmtKind::Mark(l_body), span);
                self.break_stack.push(l_end);
                self.continue_stack.push(l_head);
                self.lower_block(body);
                self.break_stack.pop();
                self.continue_stack.pop();
                self.emit(IrStmtKind::Goto(l_head), span);
                self.emit(IrStmtKind::Mark(l_end), span);
            }
            CStmtKind::DoWhile { body, cond } => {
                let l_body = self.fresh_label();
                let l_cond = self.fresh_label();
                let l_end = self.fresh_label();
                self.emit(IrStmtKind::Mark(l_body), span);
                self.break_stack.push(l_end);
                self.continue_stack.push(l_cond);
                self.lower_block(body);
                self.break_stack.pop();
                self.continue_stack.pop();
                self.emit(IrStmtKind::Mark(l_cond), span);
                self.branch(cond, l_body, l_end, span);
                self.emit(IrStmtKind::Mark(l_end), span);
            }
            CStmtKind::For { init, cond, step, body } => {
                self.scopes.push(Scope { shadowed: Vec::new() });
                if let Some(init) = init {
                    self.lower_stmt(init);
                }
                let l_cond = self.fresh_label();
                let l_body = self.fresh_label();
                let l_step = self.fresh_label();
                let l_end = self.fresh_label();
                self.emit(IrStmtKind::Mark(l_cond), span);
                match cond {
                    Some(c) => self.branch(c, l_body, l_end, span),
                    None => self.emit(IrStmtKind::Goto(l_body), span),
                }
                self.emit(IrStmtKind::Mark(l_body), span);
                self.break_stack.push(l_end);
                self.continue_stack.push(l_step);
                self.lower_block(body);
                self.break_stack.pop();
                self.continue_stack.pop();
                self.emit(IrStmtKind::Mark(l_step), span);
                if let Some(step) = step {
                    self.lower_expr_stmt(step, span);
                }
                self.emit(IrStmtKind::Goto(l_cond), span);
                self.emit(IrStmtKind::Mark(l_end), span);
                let scope = self.scopes.pop().expect("scope stack balanced");
                for (name, prev) in scope.shadowed.into_iter().rev() {
                    match prev {
                        Some(v) => {
                            self.vars.insert(name, v);
                        }
                        None => {
                            self.vars.remove(&name);
                        }
                    }
                }
            }
            CStmtKind::Switch { scrutinee, cases } => self.lower_switch(scrutinee, cases, span),
            CStmtKind::Break => match self.break_stack.last() {
                Some(&l) => self.emit(IrStmtKind::Goto(l), span),
                None => self.note(span, "break outside loop/switch"),
            },
            CStmtKind::Continue => match self.continue_stack.last() {
                Some(&l) => self.emit(IrStmtKind::Goto(l), span),
                None => self.note(span, "continue outside loop"),
            },
            CStmtKind::Goto(name) => {
                let l = self.label_for(name);
                self.emit(IrStmtKind::Goto(l), span);
            }
            CStmtKind::Label(name) => {
                let l = self.label_for(name);
                self.emit(IrStmtKind::Mark(l), span);
            }
        }
    }

    fn lower_switch(&mut self, scrutinee: &CExpr, cases: &[SwitchCase], span: Span) {
        let l_end = self.fresh_label();
        // Recognized patterns: switch (Tag_val(x)) / switch (Int_val(x)).
        enum Mode {
            SumTag(VarId),
            IntTag(VarId),
            Plain(IrExpr),
        }
        let mode = match macro_call(scrutinee) {
            Some(("Tag_val", [arg])) => match self.lower_expr(arg).as_var() {
                Some(v) => Mode::SumTag(v),
                None => Mode::Plain(self.lower_expr(scrutinee)),
            },
            Some(("Int_val" | "Long_val" | "Bool_val", [arg])) => {
                match self.lower_expr(arg).as_var() {
                    Some(v) => Mode::IntTag(v),
                    None => Mode::Plain(self.lower_expr(scrutinee)),
                }
            }
            _ => Mode::Plain(self.lower_expr(scrutinee)),
        };
        let case_labels: Vec<Label> = cases.iter().map(|_| self.fresh_label()).collect();
        let mut default_label = l_end;
        for (case, &label) in cases.iter().zip(&case_labels) {
            match case.value {
                Some(k) => {
                    let cond = match &mode {
                        Mode::SumTag(v) => IrCond::SumTagEq(*v, k),
                        Mode::IntTag(v) => IrCond::IntTagEq(*v, k),
                        Mode::Plain(e) => IrCond::Expr(IrExpr::new(
                            IrExprKind::Binop(
                                "==",
                                Box::new(e.clone()),
                                Box::new(IrExpr::int(k, span)),
                            ),
                            span,
                        )),
                    };
                    self.emit(IrStmtKind::If { cond, target: label }, span);
                }
                None => default_label = label,
            }
        }
        self.emit(IrStmtKind::Goto(default_label), span);
        self.break_stack.push(l_end);
        for (case, &label) in cases.iter().zip(&case_labels) {
            self.emit(IrStmtKind::Mark(label), span);
            self.lower_block(&case.body);
            // fall-through to the next case is implicit in the layout
        }
        self.break_stack.pop();
        self.emit(IrStmtKind::Mark(l_end), span);
    }

    /// Emits `if <cond> goto true_label; goto false_label;` recognizing the
    /// dynamic-test patterns.
    fn branch(&mut self, cond: &CExpr, true_label: Label, false_label: Label, span: Span) {
        let (ir_cond, swapped) = self.lower_cond(cond, false);
        let (t, f) = if swapped { (false_label, true_label) } else { (true_label, false_label) };
        self.emit(IrStmtKind::If { cond: ir_cond, target: t }, span);
        self.emit(IrStmtKind::Goto(f), span);
    }

    /// Canonicalizes a condition. Returns the positive IR condition and
    /// whether the branches must be swapped.
    fn lower_cond(&mut self, cond: &CExpr, negated: bool) -> (IrCond, bool) {
        match &cond.kind {
            CExprKind::Unary("!", inner) => return self.lower_cond(inner, !negated),
            CExprKind::Binary(op @ ("==" | "!="), lhs, rhs) => {
                let negated = if *op == "!=" { !negated } else { negated };
                // Tag_val(x) == n  /  Int_val(x) == n  (either operand order)
                let (call_side, const_side) = (lhs.as_ref(), rhs.as_ref());
                for (c, k) in [(call_side, const_side), (const_side, call_side)] {
                    let CExprKind::Int(n) = k.kind else { continue };
                    if let Some((name, [arg])) = macro_call(c) {
                        if let Some(v) = self.simple_var(arg) {
                            match name {
                                "Tag_val" => return (IrCond::SumTagEq(v, n), negated),
                                "Int_val" | "Long_val" | "Bool_val" => {
                                    return (IrCond::IntTagEq(v, n), negated)
                                }
                                // Is_long(x) == 0  ≡  Is_block(x)
                                "Is_long" if n == 0 => return (IrCond::Boxed(v), negated),
                                "Is_long" if n == 1 => return (IrCond::Unboxed(v), negated),
                                "Is_block" if n == 0 => return (IrCond::Unboxed(v), negated),
                                "Is_block" if n == 1 => return (IrCond::Boxed(v), negated),
                                _ => {}
                            }
                        }
                    }
                    // x == Val_int(n) / x == Val_unit comparisons on values
                    // are value-equality tests; treat as plain expressions.
                }
            }
            CExprKind::Call(..) => {
                if let Some((name, [arg])) = macro_call(cond) {
                    if let Some(v) = self.simple_var(arg) {
                        match name {
                            "Is_long" => return (IrCond::Unboxed(v), negated),
                            "Is_block" => return (IrCond::Boxed(v), negated),
                            _ => {}
                        }
                    }
                }
            }
            _ => {}
        }
        let e = self.lower_expr(cond);
        (IrCond::Expr(e), negated)
    }

    /// A bare variable reference (possibly parenthesized — the parser
    /// already flattened those).
    fn simple_var(&mut self, e: &CExpr) -> Option<VarId> {
        match &e.kind {
            CExprKind::Ident(n) => self.lookup(n),
            _ => None,
        }
    }

    // ---- expressions ---------------------------------------------------------

    /// Lowers an expression used only for effect.
    fn lower_expr_stmt(&mut self, e: &CExpr, span: Span) {
        match &e.kind {
            CExprKind::Assign("=", lhs, rhs) => {
                let lval = self.lower_lval(lhs);
                self.lower_assign_to(lval, rhs, span);
            }
            CExprKind::Assign(op, lhs, rhs) => {
                self.lower_compound_assign(op, lhs, rhs, span);
            }
            CExprKind::Call(..) => {
                if self.lower_store_field(e, span) {
                    return;
                }
                let (callee, args) = self.lower_call_parts(e);
                match callee {
                    Some((callee, args)) => {
                        self.emit(IrStmtKind::Call { dst: None, callee, args }, span)
                    }
                    None => {
                        // macro translated to a pure expression; evaluate for
                        // effect (none) and drop
                        let _ = args;
                        let _ = self.lower_expr(e);
                    }
                }
            }
            CExprKind::Postfix(inner, op) | CExprKind::Unary(op @ ("++" | "--"), inner) => {
                self.lower_incdec(inner, op, span);
            }
            CExprKind::Comma(a, b) => {
                self.lower_expr_stmt(a, span);
                self.lower_expr_stmt(b, span);
            }
            _ => {
                let _ = self.lower_expr(e);
            }
        }
    }

    /// `Store_field(x, i, v)` at statement level.
    fn lower_store_field(&mut self, e: &CExpr, span: Span) -> bool {
        // Store_double_field stores a C double, not a value; it lowers as
        // an ordinary (unconstrained) call instead
        if let Some(("Store_field", [x, i, v])) = macro_call(e) {
            let base = self.lower_expr(x);
            let offset = self.lower_expr(i);
            let lval = IrLval::Mem { base, offset };
            self.lower_assign_to(lval, v, span);
            return true;
        }
        false
    }

    /// Assigns `rhs` to `lval`, emitting a `Call` statement when `rhs` is a
    /// function call (Figure 5's `lval := f(e…)`).
    fn lower_assign_to(&mut self, lval: IrLval, rhs: &CExpr, span: Span) {
        if let CExprKind::Call(..) = rhs.kind {
            if let (Some((callee, args)), _) = self.lower_call_parts_pair(rhs) {
                self.emit(IrStmtKind::Call { dst: Some(lval), callee, args }, span);
                return;
            }
        }
        let e = self.lower_expr(rhs);
        self.emit(IrStmtKind::Assign(lval, e), span);
    }

    fn lower_compound_assign(&mut self, op: &str, lhs: &CExpr, rhs: &CExpr, span: Span) {
        let bare = op.trim_end_matches('=');
        let bare: &'static str = match bare {
            "+" => "+",
            "-" => "-",
            "*" => "*",
            "/" => "/",
            "%" => "%",
            "&" => "&",
            "|" => "|",
            "^" => "^",
            "<<" => "<<",
            ">>" => ">>",
            _ => "+",
        };
        let lval = self.lower_lval(lhs);
        let cur = self.lval_as_expr(&lval, span);
        let r = self.lower_expr(rhs);
        let combined = IrExpr::new(IrExprKind::Binop(bare, Box::new(cur), Box::new(r)), span);
        self.emit(IrStmtKind::Assign(lval, combined), span);
    }

    fn lower_incdec(&mut self, inner: &CExpr, op: &str, span: Span) {
        let bare: &'static str = if op == "++" { "+" } else { "-" };
        let lval = self.lower_lval(inner);
        let cur = self.lval_as_expr(&lval, span);
        let combined = IrExpr::new(
            IrExprKind::Binop(bare, Box::new(cur), Box::new(IrExpr::int(1, span))),
            span,
        );
        self.emit(IrStmtKind::Assign(lval, combined), span);
    }

    fn lval_as_expr(&mut self, lval: &IrLval, span: Span) -> IrExpr {
        match lval {
            IrLval::Var(v) => IrExpr::var(*v, span),
            IrLval::Mem { base, offset } => IrExpr::new(
                IrExprKind::Deref(Box::new(IrExpr::new(
                    IrExprKind::PtrAdd(Box::new(base.clone()), Box::new(offset.clone())),
                    span,
                ))),
                span,
            ),
        }
    }

    fn lower_lval(&mut self, e: &CExpr) -> IrLval {
        let span = e.span;
        match &e.kind {
            CExprKind::Ident(n) => match self.lookup(n) {
                Some(v) => IrLval::Var(v),
                None => {
                    // assignment to a global or unknown name
                    self.note(span, format!("assignment to unmodeled location `{n}`"));
                    let tmp = self.fresh_temp(CTypeExpr::Auto, span);
                    IrLval::Var(tmp)
                }
            },
            CExprKind::Unary("*", inner) => {
                let base = self.lower_expr(inner);
                IrLval::Mem { base, offset: IrExpr::int(0, span) }
            }
            CExprKind::Index(base, idx) => {
                let b = self.lower_expr(base);
                let i = self.lower_expr(idx);
                IrLval::Mem { base: b, offset: i }
            }
            CExprKind::Call(..) => {
                if let Some(("Field", [x, i])) = macro_call(e) {
                    let base = self.lower_expr(x);
                    let offset = self.lower_expr(i);
                    return IrLval::Mem { base, offset };
                }
                self.note(span, "unsupported assignment target");
                let tmp = self.fresh_temp(CTypeExpr::Auto, span);
                IrLval::Var(tmp)
            }
            CExprKind::Member(..) => {
                // stores into C structs are outside the model
                let tmp = self.fresh_temp(CTypeExpr::Auto, span);
                IrLval::Var(tmp)
            }
            _ => {
                self.note(span, "unsupported assignment target");
                let tmp = self.fresh_temp(CTypeExpr::Auto, span);
                IrLval::Var(tmp)
            }
        }
    }

    /// Splits a call expression into (callee, lowered args) unless it is an
    /// FFI macro that lowers to a pure expression (then `None`).
    fn lower_call_parts_pair(&mut self, e: &CExpr) -> (Option<(Callee, Vec<IrExpr>)>, ()) {
        (self.lower_call_parts(e).0, ())
    }

    #[allow(clippy::type_complexity)]
    fn lower_call_parts(&mut self, e: &CExpr) -> (Option<(Callee, Vec<IrExpr>)>, Vec<IrExpr>) {
        let CExprKind::Call(f, args) = &e.kind else {
            return (None, Vec::new());
        };
        if let CExprKind::Ident(name) = &f.kind {
            if is_pure_macro(name) {
                return (None, Vec::new());
            }
            // a local variable used as callee is a function pointer
            if let Some(v) = self.lookup(name) {
                let ptr = IrExpr::var(v, f.span);
                let lowered: Vec<IrExpr> = args.iter().map(|a| self.lower_expr(a)).collect();
                return (Some((Callee::Pointer(Box::new(ptr)), lowered)), Vec::new());
            }
            let lowered: Vec<IrExpr> = args.iter().map(|a| self.lower_expr(a)).collect();
            return (Some((Callee::Named(name.clone()), lowered)), Vec::new());
        }
        // call through an expression: function pointer
        let callee = self.lower_expr(f);
        let lowered: Vec<IrExpr> = args.iter().map(|a| self.lower_expr(a)).collect();
        (Some((Callee::Pointer(Box::new(callee)), lowered)), Vec::new())
    }

    fn lower_expr(&mut self, e: &CExpr) -> IrExpr {
        let span = e.span;
        match &e.kind {
            CExprKind::Int(n) => IrExpr::int(*n, span),
            CExprKind::Float(_) => IrExpr::new(IrExprKind::Float, span),
            CExprKind::Str(s) => IrExpr::new(IrExprKind::Str(s.clone()), span),
            CExprKind::Sizeof => IrExpr::new(IrExprKind::OpaqueInt, span),
            CExprKind::Ident(n) => self.lower_ident(n, span),
            CExprKind::Call(..) => self.lower_call_expr(e, span),
            CExprKind::Index(base, idx) => {
                let b = self.lower_expr(base);
                let i = self.lower_expr(idx);
                IrExpr::new(
                    IrExprKind::Deref(Box::new(IrExpr::new(
                        IrExprKind::PtrAdd(Box::new(b), Box::new(i)),
                        span,
                    ))),
                    span,
                )
            }
            CExprKind::Member(..) => IrExpr::new(IrExprKind::OpaqueInt, span),
            CExprKind::Unary("*", inner) => {
                let b = self.lower_expr(inner);
                IrExpr::new(IrExprKind::Deref(Box::new(b)), span)
            }
            CExprKind::Unary("&", inner) => match &inner.kind {
                CExprKind::Ident(n) => match self.lookup(n) {
                    Some(v) => {
                        self.address_taken.insert(v);
                        IrExpr::new(IrExprKind::AddrOfVar(v), span)
                    }
                    None => IrExpr::new(IrExprKind::Unknown, span),
                },
                _ => {
                    self.note(span, "address-of on a non-variable");
                    IrExpr::new(IrExprKind::Unknown, span)
                }
            },
            CExprKind::Unary("-", inner) => {
                let b = self.lower_expr(inner);
                IrExpr::new(IrExprKind::Neg(Box::new(b)), span)
            }
            CExprKind::Unary("!", inner) => {
                let b = self.lower_expr(inner);
                IrExpr::new(IrExprKind::Not(Box::new(b)), span)
            }
            CExprKind::Unary("~", inner) => {
                let b = self.lower_expr(inner);
                IrExpr::new(
                    IrExprKind::Binop("^", Box::new(b), Box::new(IrExpr::int(-1, span))),
                    span,
                )
            }
            CExprKind::Unary(op @ ("++" | "--"), inner) => {
                self.lower_incdec(inner, op, span);
                let lval = self.lower_lval(inner);
                self.lval_as_expr(&lval, span)
            }
            CExprKind::Unary(_, _) => IrExpr::new(IrExprKind::Unknown, span),
            CExprKind::Postfix(inner, op) => {
                // post-increment evaluated for value: the analysis tracks the
                // post state (documented approximation)
                self.lower_incdec(inner, op, span);
                let lval = self.lower_lval(inner);
                self.lval_as_expr(&lval, span)
            }
            CExprKind::Binary(op, a, b) => {
                let ia = self.lower_expr(a);
                let ib = self.lower_expr(b);
                // `p + i` on pointers/values is pointer arithmetic; the
                // type rules dispatch, so lower `+`/`-` into PtrAdd only
                // when a side could be a pointer — conservatively, keep
                // arithmetic as Binop and let the engine reinterpret
                // Binop("+") over value/pointer operands.
                IrExpr::new(IrExprKind::Binop(op, Box::new(ia), Box::new(ib)), span)
            }
            CExprKind::Assign(..) => {
                self.lower_expr_stmt(e, span);
                match &e.kind {
                    CExprKind::Assign(_, lhs, _) => {
                        let lval = self.lower_lval(lhs);
                        self.lval_as_expr(&lval, span)
                    }
                    _ => unreachable!(),
                }
            }
            CExprKind::Ternary(c, a, b) => {
                let tmp = self.fresh_temp(CTypeExpr::Auto, span);
                let l_true = self.fresh_label();
                let l_false = self.fresh_label();
                let l_end = self.fresh_label();
                self.branch(c, l_true, l_false, span);
                self.emit(IrStmtKind::Mark(l_true), span);
                self.lower_assign_to(IrLval::Var(tmp), a, span);
                self.emit(IrStmtKind::Goto(l_end), span);
                self.emit(IrStmtKind::Mark(l_false), span);
                self.lower_assign_to(IrLval::Var(tmp), b, span);
                self.emit(IrStmtKind::Mark(l_end), span);
                IrExpr::var(tmp, span)
            }
            CExprKind::Cast(ty, inner) => {
                let b = self.lower_expr(inner);
                IrExpr::new(IrExprKind::Cast(ty.clone(), Box::new(b)), span)
            }
            CExprKind::Comma(a, b) => {
                self.lower_expr_stmt(a, span);
                self.lower_expr(b)
            }
        }
    }

    fn lower_ident(&mut self, name: &str, span: Span) -> IrExpr {
        match name {
            "Val_unit" | "Val_false" | "Val_none" | "Val_emptylist" => {
                return IrExpr::new(IrExprKind::ValInt(Box::new(IrExpr::int(0, span))), span)
            }
            "Val_true" => {
                return IrExpr::new(IrExprKind::ValInt(Box::new(IrExpr::int(1, span))), span)
            }
            "NULL" => return IrExpr::int(0, span),
            _ => {}
        }
        match self.lookup(name) {
            Some(v) => IrExpr::var(v, span),
            None => {
                // global variable or enum constant: unknown int-ish value
                IrExpr::new(IrExprKind::Unknown, span)
            }
        }
    }

    fn lower_call_expr(&mut self, e: &CExpr, span: Span) -> IrExpr {
        // FFI macros that are pure expressions
        if let Some((name, args)) = macro_call(e) {
            match (name, args) {
                ("Val_int" | "Val_long" | "Val_bool", [a]) => {
                    let ia = self.lower_expr(a);
                    return IrExpr::new(IrExprKind::ValInt(Box::new(ia)), span);
                }
                ("Int_val" | "Long_val" | "Bool_val" | "Unsigned_long_val", [a]) => {
                    let ia = self.lower_expr(a);
                    return IrExpr::new(IrExprKind::IntVal(Box::new(ia)), span);
                }
                ("Field", [x, i]) => {
                    let b = self.lower_expr(x);
                    let off = self.lower_expr(i);
                    return IrExpr::new(
                        IrExprKind::Deref(Box::new(IrExpr::new(
                            IrExprKind::PtrAdd(Box::new(b), Box::new(off)),
                            span,
                        ))),
                        span,
                    );
                }
                ("Tag_val", [a]) => {
                    let ia = self.lower_expr(a);
                    return IrExpr::new(IrExprKind::Prim(PrimOp::TagVal, vec![ia]), span);
                }
                ("Is_long", [a]) => {
                    let ia = self.lower_expr(a);
                    return IrExpr::new(IrExprKind::Prim(PrimOp::IsLong, vec![ia]), span);
                }
                ("Is_block", [a]) => {
                    let ia = self.lower_expr(a);
                    return IrExpr::new(IrExprKind::Prim(PrimOp::IsBlock, vec![ia]), span);
                }
                ("String_val" | "Bytes_val" | "Bp_val", [a]) => {
                    let ia = self.lower_expr(a);
                    return IrExpr::new(IrExprKind::Prim(PrimOp::StringVal, vec![ia]), span);
                }
                ("Double_val", [a]) => {
                    let ia = self.lower_expr(a);
                    return IrExpr::new(IrExprKind::Prim(PrimOp::DoubleVal, vec![ia]), span);
                }
                ("Wosize_val" | "caml_string_length", [a]) => {
                    let ia = self.lower_expr(a);
                    return IrExpr::new(IrExprKind::Prim(PrimOp::WosizeVal, vec![ia]), span);
                }
                ("Atom", [a]) => {
                    let ia = self.lower_expr(a);
                    return IrExpr::new(IrExprKind::Prim(PrimOp::Atom, vec![ia]), span);
                }
                ("Store_field", [_, _, _]) => {
                    self.lower_store_field(e, span);
                    return IrExpr::new(IrExprKind::ValInt(Box::new(IrExpr::int(0, span))), span);
                }
                _ => {}
            }
        }
        // ordinary call in expression position: extract to a temporary
        let (parts, _) = self.lower_call_parts(e);
        match parts {
            Some((callee, args)) => {
                let tmp = self.fresh_temp(CTypeExpr::Auto, span);
                self.emit(IrStmtKind::Call { dst: Some(IrLval::Var(tmp)), callee, args }, span);
                IrExpr::var(tmp, span)
            }
            None => IrExpr::new(IrExprKind::Unknown, span),
        }
    }
}

/// Matches `name(args…)` where `name` is an identifier; returns the name
/// and argument slice.
fn macro_call(e: &CExpr) -> Option<(&str, &[CExpr])> {
    match &e.kind {
        CExprKind::Call(f, args) => match &f.kind {
            CExprKind::Ident(n) => Some((n.as_str(), args.as_slice())),
            _ => None,
        },
        _ => None,
    }
}

/// Macros lowered to pure expressions rather than calls.
fn is_pure_macro(name: &str) -> bool {
    matches!(
        name,
        "Val_int"
            | "Val_long"
            | "Val_bool"
            | "Int_val"
            | "Long_val"
            | "Bool_val"
            | "Unsigned_long_val"
            | "Field"
            | "Tag_val"
            | "Is_long"
            | "Is_block"
            | "String_val"
            | "Bytes_val"
            | "Bp_val"
            | "Double_val"
            | "Wosize_val"
            | "caml_string_length"
            | "Atom"
            | "Store_field"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use ffisafe_support::FileId;

    fn lower_src(src: &str) -> IrProgram {
        let unit = parse(FileId::from_raw(0), src);
        assert!(unit.errors.is_empty(), "{:?}", unit.errors);
        lower_unit(&unit)
    }

    fn one(src: &str) -> IrFunction {
        let p = lower_src(src);
        assert_eq!(p.functions.len(), 1);
        p.functions.into_iter().next().unwrap()
    }

    #[test]
    fn lowers_val_int_roundtrip() {
        let f = one("value f(value x) { return Val_int(Int_val(x) + 1); }");
        let IrStmtKind::Return(Some(e)) = &f.body[0].kind else { panic!("{:?}", f.body) };
        let IrExprKind::ValInt(inner) = &e.kind else { panic!() };
        let IrExprKind::Binop("+", l, _) = &inner.kind else { panic!() };
        assert!(matches!(l.kind, IrExprKind::IntVal(_)));
    }

    #[test]
    fn lowers_field_to_value_deref() {
        let f = one("value f(value x) { return Field(x, 1); }");
        let IrStmtKind::Return(Some(e)) = &f.body[0].kind else { panic!() };
        let IrExprKind::Deref(add) = &e.kind else { panic!("{:?}", e.kind) };
        let IrExprKind::PtrAdd(b, o) = &add.kind else { panic!() };
        assert_eq!(b.as_var(), Some(VarId(0)));
        assert!(matches!(o.kind, IrExprKind::Int(1)));
    }

    #[test]
    fn lowers_store_field() {
        let f = one("void f(value x, value v) { Store_field(x, 0, v); }");
        let IrStmtKind::Assign(IrLval::Mem { base, offset }, rhs) = &f.body[0].kind else {
            panic!("{:?}", f.body)
        };
        assert_eq!(base.as_var(), Some(VarId(0)));
        assert!(matches!(offset.kind, IrExprKind::Int(0)));
        assert_eq!(rhs.as_var(), Some(VarId(1)));
    }

    #[test]
    fn recognizes_is_long_test() {
        let f = one("int f(value x) { if (Is_long(x)) return 1; else return 2; }");
        let IrStmtKind::If { cond, .. } = &f.body[0].kind else { panic!("{:?}", f.body) };
        assert_eq!(cond, &IrCond::Unboxed(VarId(0)));
    }

    #[test]
    fn recognizes_negated_is_long() {
        let f = one("int f(value x) { if (!Is_long(x)) return 1; else return 2; }");
        // the branch still uses the positive Unboxed condition with targets
        // swapped: the If's fall-through must be the `return 1` path
        let IrStmtKind::If { cond, .. } = &f.body[0].kind else { panic!() };
        assert_eq!(cond, &IrCond::Unboxed(VarId(0)));
    }

    #[test]
    fn recognizes_tag_tests() {
        let f = one(
            "int f(value x) { if (Tag_val(x) == 1) return 1; if (Int_val(x) == 0) return 2; return 0; }",
        );
        let conds: Vec<&IrCond> = f
            .body
            .iter()
            .filter_map(|s| match &s.kind {
                IrStmtKind::If { cond, .. } => Some(cond),
                _ => None,
            })
            .collect();
        assert!(conds.contains(&&IrCond::SumTagEq(VarId(0), 1)));
        assert!(conds.contains(&&IrCond::IntTagEq(VarId(0), 0)));
    }

    #[test]
    fn switch_on_tag_val_becomes_sum_tag_chain() {
        let f = one(r#"
            int f(value x) {
                switch (Tag_val(x)) {
                    case 0: return 1;
                    case 1: return 2;
                    default: return 3;
                }
            }
            "#);
        let tags: Vec<i64> = f
            .body
            .iter()
            .filter_map(|s| match &s.kind {
                IrStmtKind::If { cond: IrCond::SumTagEq(_, n), .. } => Some(*n),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![0, 1]);
    }

    #[test]
    fn caml_macros_lower_to_protect() {
        let f = one(r#"
            value f(value a) {
                CAMLparam1(a);
                CAMLlocal1(r);
                r = a;
                CAMLreturn(r);
            }
            "#);
        let protects: Vec<VarId> = f
            .body
            .iter()
            .filter_map(|s| match &s.kind {
                IrStmtKind::Protect(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(protects.len(), 2);
        assert!(f.body.iter().any(|s| matches!(s.kind, IrStmtKind::CamlReturn(Some(_)))));
    }

    #[test]
    fn calls_in_expressions_are_extracted() {
        let f = one("value f(value x) { return caml_copy_string(\"hi\"); }");
        assert!(matches!(
            &f.body[0].kind,
            IrStmtKind::Call { dst: Some(IrLval::Var(_)), callee: Callee::Named(n), .. } if n == "caml_copy_string"
        ));
        assert!(matches!(&f.body[1].kind, IrStmtKind::Return(Some(_))));
    }

    #[test]
    fn decl_with_call_initializer() {
        let f = one("value f(value x) { value r = caml_alloc(2, 0); return r; }");
        assert!(matches!(
            &f.body[0].kind,
            IrStmtKind::Call { dst: Some(IrLval::Var(_)), callee: Callee::Named(n), .. } if n == "caml_alloc"
        ));
    }

    #[test]
    fn while_loop_shape() {
        let f = one("int f(int n) { while (n > 0) { n = n - 1; } return n; }");
        // head mark, if, goto, body mark, assign, goto, end mark, return
        assert!(f.body.iter().filter(|s| matches!(s.kind, IrStmtKind::Mark(_))).count() >= 3);
        assert!(f.body.iter().any(|s| matches!(s.kind, IrStmtKind::Goto(_))));
    }

    #[test]
    fn implicit_return_synthesized() {
        let f = one("void f(int x) { x = x + 1; }");
        assert!(matches!(f.body.last().unwrap().kind, IrStmtKind::Return(None)));
    }

    #[test]
    fn address_of_recorded() {
        let f = one("int f(value v) { helper(&v); return 0; }");
        assert!(f.address_taken.contains(&VarId(0)));
    }

    #[test]
    fn function_pointer_call_lowered() {
        let f = one("int apply(int (*fn)(int), int x) { return fn(x); }");
        assert!(f
            .body
            .iter()
            .any(|s| matches!(&s.kind, IrStmtKind::Call { callee: Callee::Pointer(_), .. })));
    }

    #[test]
    fn ternary_creates_join_point() {
        let f = one("int f(int c) { return c ? 1 : 2; }");
        let marks = f.body.iter().filter(|s| matches!(s.kind, IrStmtKind::Mark(_))).count();
        assert!(marks >= 3, "{:#?}", f.body);
    }

    #[test]
    fn val_unit_is_tagged_zero() {
        let f = one("value f(void) { return Val_unit; }");
        let IrStmtKind::Return(Some(e)) = &f.body[0].kind else { panic!() };
        let IrExprKind::ValInt(i) = &e.kind else { panic!("{:?}", e.kind) };
        assert!(matches!(i.kind, IrExprKind::Int(0)));
    }

    #[test]
    fn prototypes_and_globals_collected() {
        let p = lower_src("int helper(value v);\nstatic value cache;\n");
        assert_eq!(p.prototypes.len(), 1);
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].1, CTypeExpr::Value);
    }

    #[test]
    fn shadowing_respects_blocks() {
        let f = one(r#"
            int f(int x) {
                { int y = 1; x = y; }
                { value y = Val_int(2); x = Int_val(y); }
                return x;
            }
            "#);
        // two distinct `y` locals plus param
        assert_eq!(f.locals.iter().filter(|l| l.name == "y").count(), 2);
    }

    #[test]
    fn string_val_prim() {
        let f = one("int f(value s) { return use(String_val(s)); }");
        let has_prim = f.body.iter().any(|st| match &st.kind {
            IrStmtKind::Call { args, .. } => {
                args.iter().any(|a| matches!(&a.kind, IrExprKind::Prim(PrimOp::StringVal, _)))
            }
            _ => false,
        });
        assert!(has_prim, "{:#?}", f.body);
    }
}
