//! Lexer for the C glue-code sublanguage.
//!
//! Preprocessor directives (`#include`, `#define`, …) are skipped line-wise
//! (with continuation handling); the FFI macros the analysis cares about
//! (`Val_int`, `CAMLparam1`, …) appear as ordinary identifiers because glue
//! code *uses* them rather than defining them.

use crate::token::{CToken, CTokenKind};
use ffisafe_support::{FileId, Span};

/// Multi-character punctuation, longest first.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "+", "-", "*", "/", "%", "=", "<", ">", "!", "~",
    "&", "|", "^", "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
];

/// Lexes C source text into tokens (ending with `Eof`).
pub fn lex(file: FileId, src: &str) -> Vec<CToken> {
    CLexer { file, src: src.as_bytes(), pos: 0 }.run()
}

struct CLexer<'a> {
    file: FileId,
    src: &'a [u8],
    pos: usize,
}

impl<'a> CLexer<'a> {
    fn run(mut self) -> Vec<CToken> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let lo = self.pos as u32;
            let Some(c) = self.peek() else {
                out.push(self.tok(CTokenKind::Eof, lo));
                return out;
            };
            let kind = match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let s = self.take_ident();
                    CTokenKind::Ident(s)
                }
                b'0'..=b'9' => self.take_number(),
                b'"' => {
                    let s = self.take_string();
                    CTokenKind::Str(s)
                }
                b'\'' => {
                    let v = self.take_char();
                    CTokenKind::Char(v)
                }
                _ => {
                    let mut matched = None;
                    for p in PUNCTS {
                        if self.src[self.pos..].starts_with(p.as_bytes()) {
                            matched = Some(*p);
                            break;
                        }
                    }
                    match matched {
                        Some(p) => {
                            self.pos += p.len();
                            CTokenKind::Punct(p)
                        }
                        None => {
                            self.bump();
                            continue; // unknown byte: drop it
                        }
                    }
                }
            };
            out.push(self.tok(kind, lo));
        }
    }

    fn tok(&self, kind: CTokenKind, lo: u32) -> CToken {
        CToken { kind, span: Span::new(self.file, lo, self.pos as u32) }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.bump(),
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return,
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => self.bump(),
                        }
                    }
                }
                Some(b'#') => {
                    // preprocessor line, honoring backslash continuations
                    loop {
                        match self.peek() {
                            None => return,
                            Some(b'\\') => {
                                self.bump();
                                if self.peek() == Some(b'\r') {
                                    self.bump();
                                }
                                if self.peek() == Some(b'\n') {
                                    self.bump();
                                }
                            }
                            Some(b'\n') => {
                                self.bump();
                                break;
                            }
                            _ => self.bump(),
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn take_ident(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')) {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn take_number(&mut self) -> CTokenKind {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')) {
                self.bump();
            }
        } else {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
            if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
                is_float = true;
                self.bump();
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) && !is_float {
                // 1e9 style
                if matches!(self.peek2(), Some(b'0'..=b'9' | b'+' | b'-')) {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.bump();
                    }
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.bump();
                    }
                }
            }
        }
        // suffixes
        while matches!(self.peek(), Some(b'u' | b'U' | b'l' | b'L' | b'f' | b'F')) {
            if matches!(self.peek(), Some(b'f' | b'F')) {
                is_float = true;
            }
            self.bump();
        }
        let text: String = String::from_utf8_lossy(&self.src[start..self.pos])
            .trim_end_matches(['u', 'U', 'l', 'L', 'f', 'F'])
            .to_string();
        if is_float {
            CTokenKind::Float(text.parse().unwrap_or(0.0))
        } else if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
            CTokenKind::Int(i64::from_str_radix(hex, 16).unwrap_or(0))
        } else if text.len() > 1 && text.starts_with('0') {
            CTokenKind::Int(i64::from_str_radix(&text[1..], 8).unwrap_or(0))
        } else {
            CTokenKind::Int(text.parse().unwrap_or(0))
        }
    }

    fn take_string(&mut self) -> String {
        self.bump(); // "
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return out,
                Some(b'"') => {
                    self.bump();
                    return out;
                }
                Some(b'\\') => {
                    self.bump();
                    match self.peek() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'0') => out.push('\0'),
                        Some(c) => out.push(c as char),
                        None => {}
                    }
                    self.bump();
                }
                Some(c) => {
                    out.push(c as char);
                    self.bump();
                }
            }
        }
    }

    fn take_char(&mut self) -> i64 {
        self.bump(); // '
        let v = match self.peek() {
            Some(b'\\') => {
                self.bump();
                let v = match self.peek() {
                    Some(b'n') => b'\n' as i64,
                    Some(b't') => b'\t' as i64,
                    Some(b'0') => 0,
                    Some(c) => c as i64,
                    None => 0,
                };
                self.bump();
                v
            }
            Some(c) => {
                self.bump();
                c as i64
            }
            None => 0,
        };
        if self.peek() == Some(b'\'') {
            self.bump();
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<CTokenKind> {
        lex(FileId::from_raw(0), src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_glue_function_header() {
        let ks = kinds("value ml_add(value a, value b) {");
        assert_eq!(ks[0], CTokenKind::Ident("value".into()));
        assert_eq!(ks[1], CTokenKind::Ident("ml_add".into()));
        assert_eq!(ks[2], CTokenKind::Punct("("));
        assert!(ks.contains(&CTokenKind::Punct("{")));
    }

    #[test]
    fn skips_preprocessor_and_comments() {
        let ks = kinds(
            "#include <caml/mlvalues.h>\n// line comment\n/* block */ int x; #define A \\\n  1\nlong y;",
        );
        assert_eq!(ks[0], CTokenKind::Ident("int".into()));
        assert_eq!(ks[4], CTokenKind::Ident("y".into()));
    }

    #[test]
    fn numbers_in_all_bases() {
        let ks = kinds("42 0x2A 052 1.5 2e3 7L 3UL");
        assert_eq!(ks[0], CTokenKind::Int(42));
        assert_eq!(ks[1], CTokenKind::Int(42));
        assert_eq!(ks[2], CTokenKind::Int(42));
        assert_eq!(ks[3], CTokenKind::Float(1.5));
        assert_eq!(ks[4], CTokenKind::Float(2000.0));
        assert_eq!(ks[5], CTokenKind::Int(7));
        assert_eq!(ks[6], CTokenKind::Int(3));
    }

    #[test]
    fn multichar_punct_longest_match() {
        let ks = kinds("a->b <<= c >> d != e");
        assert!(ks.contains(&CTokenKind::Punct("->")));
        assert!(ks.contains(&CTokenKind::Punct("<<=")));
        assert!(ks.contains(&CTokenKind::Punct(">>")));
        assert!(ks.contains(&CTokenKind::Punct("!=")));
    }

    #[test]
    fn strings_and_chars() {
        let ks = kinds(r#""hello\n" 'x' '\n'"#);
        assert_eq!(ks[0], CTokenKind::Str("hello\n".into()));
        assert_eq!(ks[1], CTokenKind::Char('x' as i64));
        assert_eq!(ks[2], CTokenKind::Char('\n' as i64));
    }

    #[test]
    fn spans_track_positions() {
        let toks = lex(FileId::from_raw(0), "int x");
        assert_eq!((toks[0].span.lo, toks[0].span.hi), (0, 3));
        assert_eq!((toks[1].span.lo, toks[1].span.hi), (4, 5));
    }
}
