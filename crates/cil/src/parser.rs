//! Recursive-descent parser for the C glue-code sublanguage.
//!
//! Covers the constructs OCaml FFI glue actually uses: function
//! definitions over `value`, locals, full expression syntax with the usual
//! precedence, `if`/`while`/`do`/`for`/`switch`/`goto`, casts, and the
//! `CAMLparam`/`CAMLlocal`/`CAMLreturn` macros (recognized syntactically,
//! exactly like the paper's CIL-based tool). Unknown constructs are skipped
//! with a recorded error rather than aborting.

use crate::ast::*;
use crate::ctypes::CTypeExpr;
use crate::lexer::lex;
use crate::token::{CToken, CTokenKind};
use ffisafe_support::{FileId, Span};
use std::collections::HashMap;

/// Parses a C translation unit.
pub fn parse(file: FileId, src: &str) -> CUnit {
    let tokens = lex(file, src);
    let mut typedefs = HashMap::new();
    // Common library handles appear without their defining headers (we skip
    // preprocessing); seed them as opaque named types.
    for t in ["FILE", "size_t", "intnat", "uintnat", "mlsize_t", "tag_t", "header_t"] {
        typedefs.insert(
            t.to_string(),
            if t == "FILE" { CTypeExpr::Named("FILE".into()) } else { CTypeExpr::Int },
        );
    }
    Parser { tokens, pos: 0, unit: CUnit::default(), typedefs }.run()
}

const TYPE_WORDS: &[&str] = &[
    "void", "int", "long", "short", "char", "unsigned", "signed", "float", "double", "value",
    "struct", "union", "enum", "const", "volatile",
];

const QUALIFIERS: &[&str] =
    &["static", "extern", "inline", "register", "CAMLprim", "CAMLexport", "CAMLextern"];

struct Parser {
    tokens: Vec<CToken>,
    pos: usize,
    unit: CUnit,
    typedefs: HashMap<String, CTypeExpr>,
}

impl Parser {
    fn run(mut self) -> CUnit {
        loop {
            match self.peek_kind().clone() {
                CTokenKind::Eof => return self.unit,
                CTokenKind::Punct(";") => {
                    self.bump();
                }
                CTokenKind::Ident(s) if s == "typedef" => self.parse_typedef(),
                _ => self.parse_top_decl(),
            }
        }
    }

    // ---- token plumbing ---------------------------------------------------

    fn peek(&self) -> &CToken {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &CTokenKind {
        &self.peek().kind
    }

    fn peek_kind_at(&self, n: usize) -> &CTokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> CToken {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek_kind().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) {
        if !self.eat_punct(p) {
            let span = self.span();
            self.unit.errors.push((span, format!("expected `{p}`")));
        }
    }

    fn error(&mut self, msg: impl Into<String>) {
        let span = self.span();
        self.unit.errors.push((span, msg.into()));
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), CTokenKind::Eof)
    }

    /// Skips a balanced `{ … }` region (assumes positioned at `{`).
    fn skip_braces(&mut self) {
        let mut depth = 0i32;
        loop {
            match self.peek_kind() {
                CTokenKind::Punct("{") => {
                    depth += 1;
                    self.bump();
                }
                CTokenKind::Punct("}") => {
                    depth -= 1;
                    self.bump();
                    if depth <= 0 {
                        return;
                    }
                }
                CTokenKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Skips to just past the next `;` at depth 0.
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        loop {
            match self.peek_kind() {
                CTokenKind::Eof => return,
                CTokenKind::Punct("(") | CTokenKind::Punct("[") | CTokenKind::Punct("{") => {
                    depth += 1;
                    self.bump();
                }
                CTokenKind::Punct(")") | CTokenKind::Punct("]") | CTokenKind::Punct("}") => {
                    depth -= 1;
                    self.bump();
                }
                CTokenKind::Punct(";") if depth <= 0 => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- types -------------------------------------------------------------

    fn is_type_start(&self) -> bool {
        match self.peek_kind() {
            CTokenKind::Ident(s) => {
                TYPE_WORDS.contains(&s.as_str()) || self.typedefs.contains_key(s)
            }
            _ => false,
        }
    }

    /// Parses a base type (without pointer declarators).
    fn parse_base_type(&mut self) -> CTypeExpr {
        // skip qualifiers
        while matches!(self.peek_kind(), CTokenKind::Ident(s) if s == "const" || s == "volatile") {
            self.bump();
        }
        match self.peek_kind().clone() {
            CTokenKind::Ident(s) if s == "struct" || s == "union" || s == "enum" => {
                self.bump();
                let name = match self.peek_kind().clone() {
                    CTokenKind::Ident(n) => {
                        self.bump();
                        n
                    }
                    _ => "<anon>".to_string(),
                };
                if self.peek_kind().is_punct("{") {
                    self.skip_braces();
                }
                if s == "enum" {
                    CTypeExpr::Int
                } else {
                    CTypeExpr::Named(name)
                }
            }
            CTokenKind::Ident(s) if s == "value" => {
                self.bump();
                CTypeExpr::Value
            }
            CTokenKind::Ident(s) if s == "void" => {
                self.bump();
                CTypeExpr::Void
            }
            CTokenKind::Ident(s) if s == "float" || s == "double" => {
                self.bump();
                CTypeExpr::Float
            }
            CTokenKind::Ident(s)
                if matches!(
                    s.as_str(),
                    "int" | "long" | "short" | "char" | "unsigned" | "signed"
                ) =>
            {
                while matches!(
                    self.peek_kind(),
                    CTokenKind::Ident(w)
                        if matches!(w.as_str(), "int" | "long" | "short" | "char" | "unsigned" | "signed")
                ) {
                    self.bump();
                }
                CTypeExpr::Int
            }
            CTokenKind::Ident(s) => {
                if let Some(ty) = self.typedefs.get(&s).cloned() {
                    self.bump();
                    ty
                } else {
                    // unknown library type used as `Foo x` / `Foo *x`
                    self.bump();
                    CTypeExpr::Named(s)
                }
            }
            _ => {
                self.error("expected a type");
                self.bump();
                CTypeExpr::Int
            }
        }
    }

    /// Parses pointer stars and an optional name:
    /// `* * name`, `(*name)(…)` (function pointer) or an abstract
    /// declarator. Returns `(name, type)`.
    fn parse_declarator(&mut self, base: CTypeExpr) -> (String, CTypeExpr) {
        let mut ty = base;
        while self.eat_punct("*") {
            // skip qualifiers between stars
            while matches!(self.peek_kind(), CTokenKind::Ident(s) if s == "const" || s == "volatile")
            {
                self.bump();
            }
            ty = ty.ptr();
        }
        if self.peek_kind().is_punct("(") && self.peek_kind_at(1).is_punct("*") {
            // function pointer: (*name)(params)
            self.bump(); // (
            self.bump(); // *
            let name = match self.peek_kind().clone() {
                CTokenKind::Ident(n) => {
                    self.bump();
                    n
                }
                _ => String::new(),
            };
            self.expect_punct(")");
            if self.peek_kind().is_punct("(") {
                self.skip_parens();
            }
            return (name, CTypeExpr::FuncPtr);
        }
        let name = match self.peek_kind().clone() {
            CTokenKind::Ident(n) if !TYPE_WORDS.contains(&n.as_str()) => {
                self.bump();
                n
            }
            _ => String::new(),
        };
        // array suffixes become pointers
        while self.peek_kind().is_punct("[") {
            let mut depth = 0i32;
            loop {
                match self.peek_kind() {
                    CTokenKind::Punct("[") => {
                        depth += 1;
                        self.bump();
                    }
                    CTokenKind::Punct("]") => {
                        depth -= 1;
                        self.bump();
                        if depth <= 0 {
                            break;
                        }
                    }
                    CTokenKind::Eof => break,
                    _ => {
                        self.bump();
                    }
                }
            }
            ty = ty.ptr();
        }
        (name, ty)
    }

    fn skip_parens(&mut self) {
        let mut depth = 0i32;
        loop {
            match self.peek_kind() {
                CTokenKind::Punct("(") => {
                    depth += 1;
                    self.bump();
                }
                CTokenKind::Punct(")") => {
                    depth -= 1;
                    self.bump();
                    if depth <= 0 {
                        return;
                    }
                }
                CTokenKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- top level ------------------------------------------------------------

    fn parse_typedef(&mut self) {
        self.bump(); // typedef
        let base = self.parse_base_type();
        let (name, ty) = self.parse_declarator(base);
        if !name.is_empty() {
            self.typedefs.insert(name, ty);
        }
        self.skip_to_semi();
    }

    fn parse_top_decl(&mut self) {
        let start = self.span();
        let mut is_static = false;
        while matches!(self.peek_kind(), CTokenKind::Ident(s) if QUALIFIERS.contains(&s.as_str())) {
            if self.peek_kind().is_ident("static") {
                is_static = true;
            }
            self.bump();
        }
        if self.at_eof() {
            return;
        }
        // bare struct definition at top level
        if matches!(self.peek_kind(), CTokenKind::Ident(s) if s == "struct" || s == "union" || s == "enum")
        {
            let save = self.pos;
            let _ = self.parse_base_type();
            if self.peek_kind().is_punct(";") {
                self.bump();
                return;
            }
            self.pos = save;
        }
        if !self.is_type_start()
            && !matches!(
                (self.peek_kind(), self.peek_kind_at(1)),
                (CTokenKind::Ident(_), CTokenKind::Ident(_))
                    | (CTokenKind::Ident(_), CTokenKind::Punct("*"))
            )
        {
            self.error("unrecognized top-level construct");
            self.skip_to_semi();
            return;
        }
        let base = self.parse_base_type();
        loop {
            let (name, ty) = self.parse_declarator(base.clone());
            if name.is_empty() {
                self.error("expected declarator name");
                self.skip_to_semi();
                return;
            }
            if self.peek_kind().is_punct("(") {
                // function
                let params = self.parse_params();
                if self.peek_kind().is_punct("{") {
                    let body = self.parse_block();
                    self.unit.functions.push(CFunction {
                        name,
                        ret: ty,
                        params,
                        body: Some(body),
                        is_static,
                        span: start,
                    });
                } else {
                    self.skip_to_semi();
                    self.unit.functions.push(CFunction {
                        name,
                        ret: ty,
                        params,
                        body: None,
                        is_static,
                        span: start,
                    });
                }
                return;
            }
            // global variable (initializer skipped — globals are opaque to
            // the analysis, which only warns about `value` globals)
            self.unit.globals.push(CGlobal { name, ty, span: start });
            if self.eat_punct("=") {
                // skip initializer expression/braces
                let mut depth = 0i32;
                loop {
                    match self.peek_kind() {
                        CTokenKind::Eof => break,
                        CTokenKind::Punct("{")
                        | CTokenKind::Punct("(")
                        | CTokenKind::Punct("[") => {
                            depth += 1;
                            self.bump();
                        }
                        CTokenKind::Punct("}")
                        | CTokenKind::Punct(")")
                        | CTokenKind::Punct("]") => {
                            depth -= 1;
                            self.bump();
                        }
                        CTokenKind::Punct(",") | CTokenKind::Punct(";") if depth <= 0 => break,
                        _ => {
                            self.bump();
                        }
                    }
                }
            }
            if self.eat_punct(",") {
                continue;
            }
            self.expect_punct(";");
            return;
        }
    }

    fn parse_params(&mut self) -> Vec<CParam> {
        self.expect_punct("(");
        let mut params = Vec::new();
        if self.eat_punct(")") {
            return params;
        }
        loop {
            if self.peek_kind().is_ident("void") && self.peek_kind_at(1).is_punct(")") {
                self.bump();
                self.bump();
                return params;
            }
            if self.peek_kind().is_punct("...") {
                self.bump();
                self.eat_punct(")");
                return params;
            }
            let base = self.parse_base_type();
            let (name, ty) = self.parse_declarator(base);
            params.push(CParam { name, ty });
            if self.eat_punct(",") {
                continue;
            }
            self.expect_punct(")");
            return params;
        }
    }

    // ---- statements -----------------------------------------------------------

    fn parse_block(&mut self) -> Vec<CStmt> {
        self.expect_punct("{");
        let mut out = Vec::new();
        while !self.peek_kind().is_punct("}") && !self.at_eof() {
            out.push(self.parse_stmt());
        }
        self.eat_punct("}");
        out
    }

    fn parse_stmt(&mut self) -> CStmt {
        let start = self.span();
        match self.peek_kind().clone() {
            CTokenKind::Punct("{") => {
                let body = self.parse_block();
                CStmt::new(CStmtKind::Block(body), start)
            }
            CTokenKind::Punct(";") => {
                self.bump();
                CStmt::new(CStmtKind::Empty, start)
            }
            CTokenKind::Ident(s) => match s.as_str() {
                "if" => self.parse_if(start),
                "while" => self.parse_while(start),
                "do" => self.parse_do_while(start),
                "for" => self.parse_for(start),
                "switch" => self.parse_switch(start),
                "return" => {
                    self.bump();
                    let e =
                        if self.peek_kind().is_punct(";") { None } else { Some(self.parse_expr()) };
                    self.expect_punct(";");
                    CStmt::new(CStmtKind::Return(e), start)
                }
                "break" => {
                    self.bump();
                    self.expect_punct(";");
                    CStmt::new(CStmtKind::Break, start)
                }
                "continue" => {
                    self.bump();
                    self.expect_punct(";");
                    CStmt::new(CStmtKind::Continue, start)
                }
                "goto" => {
                    self.bump();
                    let label = match self.peek_kind().clone() {
                        CTokenKind::Ident(l) => {
                            self.bump();
                            l
                        }
                        _ => {
                            self.error("expected label after goto");
                            String::new()
                        }
                    };
                    self.expect_punct(";");
                    CStmt::new(CStmtKind::Goto(label), start)
                }
                _ if is_caml_param_macro(&s) => self.parse_caml_protect(start, &s, false),
                _ if is_caml_local_macro(&s) => self.parse_caml_protect(start, &s, true),
                "CAMLreturn" => {
                    self.bump();
                    self.expect_punct("(");
                    let e =
                        if self.peek_kind().is_punct(")") { None } else { Some(self.parse_expr()) };
                    self.expect_punct(")");
                    self.eat_punct(";");
                    CStmt::new(CStmtKind::CamlReturn(e), start)
                }
                "CAMLreturn0" => {
                    self.bump();
                    // may be used as `CAMLreturn0;` or `CAMLreturn0()`
                    if self.peek_kind().is_punct("(") {
                        self.skip_parens();
                    }
                    self.eat_punct(";");
                    CStmt::new(CStmtKind::CamlReturn(None), start)
                }
                _ if self.is_type_start() => self.parse_decl_stmt(start),
                _ if self.looks_like_named_decl() => self.parse_decl_stmt(start),
                _ if matches!(self.peek_kind_at(1), CTokenKind::Punct(":"))
                    && !matches!(self.peek_kind_at(2), CTokenKind::Punct(":")) =>
                {
                    self.bump();
                    self.bump();
                    CStmt::new(CStmtKind::Label(s), start)
                }
                _ => self.parse_expr_stmt(start),
            },
            _ => self.parse_expr_stmt(start),
        }
    }

    /// `Foo x;` / `Foo *x = …;` where `Foo` is an unknown library type.
    fn looks_like_named_decl(&self) -> bool {
        let CTokenKind::Ident(_) = self.peek_kind() else { return false };
        match (self.peek_kind_at(1), self.peek_kind_at(2)) {
            (CTokenKind::Ident(_), CTokenKind::Punct(";"))
            | (CTokenKind::Ident(_), CTokenKind::Punct("="))
            | (CTokenKind::Ident(_), CTokenKind::Punct(","))
            | (CTokenKind::Ident(_), CTokenKind::Punct("[")) => true,
            (CTokenKind::Punct("*"), CTokenKind::Ident(_)) => matches!(
                self.peek_kind_at(3),
                CTokenKind::Punct(";") | CTokenKind::Punct("=") | CTokenKind::Punct(",")
            ),
            _ => false,
        }
    }

    fn parse_decl_stmt(&mut self, start: Span) -> CStmt {
        let base = self.parse_base_type();
        let mut decls = Vec::new();
        loop {
            let (name, ty) = self.parse_declarator(base.clone());
            let init = if self.eat_punct("=") { Some(self.parse_assign_expr()) } else { None };
            decls.push(CStmt::new(CStmtKind::Decl { ty, name, init }, start));
            if self.eat_punct(",") {
                continue;
            }
            self.expect_punct(";");
            break;
        }
        if decls.len() == 1 {
            decls.pop().unwrap()
        } else {
            CStmt::new(CStmtKind::Block(decls), start)
        }
    }

    fn parse_expr_stmt(&mut self, start: Span) -> CStmt {
        let e = self.parse_expr();
        self.expect_punct(";");
        CStmt::new(CStmtKind::Expr(e), start)
    }

    fn parse_caml_protect(&mut self, start: Span, _macro_name: &str, declares: bool) -> CStmt {
        self.bump(); // macro name
        let mut names = Vec::new();
        if self.eat_punct("(") {
            while !self.peek_kind().is_punct(")") && !self.at_eof() {
                if let CTokenKind::Ident(n) = self.peek_kind().clone() {
                    names.push(n);
                }
                self.bump();
                self.eat_punct(",");
            }
            self.eat_punct(")");
        }
        self.eat_punct(";");
        CStmt::new(CStmtKind::CamlProtect { names, declares }, start)
    }

    fn parse_if(&mut self, start: Span) -> CStmt {
        self.bump(); // if
        self.expect_punct("(");
        let cond = self.parse_expr();
        self.expect_punct(")");
        let then_branch = self.parse_stmt_as_block();
        let else_branch = if self.peek_kind().is_ident("else") {
            self.bump();
            self.parse_stmt_as_block()
        } else {
            Vec::new()
        };
        CStmt::new(CStmtKind::If { cond, then_branch, else_branch }, start)
    }

    fn parse_stmt_as_block(&mut self) -> Vec<CStmt> {
        if self.peek_kind().is_punct("{") {
            self.parse_block()
        } else {
            vec![self.parse_stmt()]
        }
    }

    fn parse_while(&mut self, start: Span) -> CStmt {
        self.bump();
        self.expect_punct("(");
        let cond = self.parse_expr();
        self.expect_punct(")");
        let body = self.parse_stmt_as_block();
        CStmt::new(CStmtKind::While { cond, body }, start)
    }

    fn parse_do_while(&mut self, start: Span) -> CStmt {
        self.bump();
        let body = self.parse_stmt_as_block();
        if self.peek_kind().is_ident("while") {
            self.bump();
        }
        self.expect_punct("(");
        let cond = self.parse_expr();
        self.expect_punct(")");
        self.eat_punct(";");
        CStmt::new(CStmtKind::DoWhile { body, cond }, start)
    }

    fn parse_for(&mut self, start: Span) -> CStmt {
        self.bump();
        self.expect_punct("(");
        let init = if self.peek_kind().is_punct(";") {
            self.bump();
            None
        } else if self.is_type_start() {
            Some(Box::new(self.parse_decl_stmt(start)))
        } else {
            let e = self.parse_expr();
            self.expect_punct(";");
            Some(Box::new(CStmt::new(CStmtKind::Expr(e), start)))
        };
        let cond = if self.peek_kind().is_punct(";") { None } else { Some(self.parse_expr()) };
        self.expect_punct(";");
        let step = if self.peek_kind().is_punct(")") { None } else { Some(self.parse_expr()) };
        self.expect_punct(")");
        let body = self.parse_stmt_as_block();
        CStmt::new(CStmtKind::For { init, cond, step, body }, start)
    }

    fn parse_switch(&mut self, start: Span) -> CStmt {
        self.bump();
        self.expect_punct("(");
        let scrutinee = self.parse_expr();
        self.expect_punct(")");
        self.expect_punct("{");
        let mut cases: Vec<SwitchCase> = Vec::new();
        while !self.peek_kind().is_punct("}") && !self.at_eof() {
            if self.peek_kind().is_ident("case") {
                self.bump();
                let value = self.parse_case_const();
                self.expect_punct(":");
                cases.push(SwitchCase {
                    value: Some(value),
                    body: Vec::new(),
                    falls_through: true,
                });
            } else if self.peek_kind().is_ident("default") {
                self.bump();
                self.expect_punct(":");
                cases.push(SwitchCase { value: None, body: Vec::new(), falls_through: true });
            } else {
                let stmt = self.parse_stmt();
                let ends = matches!(
                    stmt.kind,
                    CStmtKind::Break
                        | CStmtKind::Return(_)
                        | CStmtKind::CamlReturn(_)
                        | CStmtKind::Goto(_)
                        | CStmtKind::Continue
                );
                match cases.last_mut() {
                    Some(case) => {
                        case.body.push(stmt);
                        if ends {
                            case.falls_through = false;
                        }
                    }
                    None => self.error("statement before first case label"),
                }
            }
        }
        self.eat_punct("}");
        CStmt::new(CStmtKind::Switch { scrutinee, cases }, start)
    }

    fn parse_case_const(&mut self) -> i64 {
        let neg = self.eat_punct("-");
        match self.peek_kind().clone() {
            CTokenKind::Int(n) => {
                self.bump();
                if neg {
                    -n
                } else {
                    n
                }
            }
            CTokenKind::Char(c) => {
                self.bump();
                c
            }
            _ => {
                self.error("unsupported case constant");
                self.bump();
                i64::MIN / 2
            }
        }
    }

    // ---- expressions -------------------------------------------------------------

    fn parse_expr(&mut self) -> CExpr {
        let first = self.parse_assign_expr();
        if self.peek_kind().is_punct(",") {
            let span = first.span;
            let mut acc = first;
            while self.eat_punct(",") {
                let rhs = self.parse_assign_expr();
                acc = CExpr::new(CExprKind::Comma(Box::new(acc), Box::new(rhs)), span);
            }
            acc
        } else {
            first
        }
    }

    fn parse_assign_expr(&mut self) -> CExpr {
        let lhs = self.parse_ternary();
        let op = match self.peek_kind() {
            CTokenKind::Punct(
                p @ ("=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>="),
            ) => *p,
            _ => return lhs,
        };
        self.bump();
        let rhs = self.parse_assign_expr();
        let span = lhs.span;
        CExpr::new(CExprKind::Assign(op, Box::new(lhs), Box::new(rhs)), span)
    }

    fn parse_ternary(&mut self) -> CExpr {
        let cond = self.parse_binary(0);
        if self.eat_punct("?") {
            let a = self.parse_assign_expr();
            self.expect_punct(":");
            let b = self.parse_assign_expr();
            let span = cond.span;
            CExpr::new(CExprKind::Ternary(Box::new(cond), Box::new(a), Box::new(b)), span)
        } else {
            cond
        }
    }

    fn binop_level(p: &str) -> Option<u8> {
        Some(match p {
            "||" => 1,
            "&&" => 2,
            "|" => 3,
            "^" => 4,
            "&" => 5,
            "==" | "!=" => 6,
            "<" | ">" | "<=" | ">=" => 7,
            "<<" | ">>" => 8,
            "+" | "-" => 9,
            "*" | "/" | "%" => 10,
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_level: u8) -> CExpr {
        let mut lhs = self.parse_unary();
        loop {
            let (op, level) = match self.peek_kind() {
                CTokenKind::Punct(p) => match Self::binop_level(p) {
                    Some(l) if l >= min_level => (*p, l),
                    _ => return lhs,
                },
                _ => return lhs,
            };
            self.bump();
            let rhs = self.parse_binary(level + 1);
            let span = lhs.span;
            lhs = CExpr::new(CExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn parse_unary(&mut self) -> CExpr {
        let span = self.span();
        match self.peek_kind().clone() {
            CTokenKind::Punct(p @ ("*" | "&" | "-" | "!" | "~" | "+")) => {
                self.bump();
                let inner = self.parse_unary();
                if p == "+" {
                    inner
                } else {
                    CExpr::new(CExprKind::Unary(p, Box::new(inner)), span)
                }
            }
            CTokenKind::Punct(p @ ("++" | "--")) => {
                self.bump();
                let inner = self.parse_unary();
                CExpr::new(CExprKind::Unary(p, Box::new(inner)), span)
            }
            CTokenKind::Ident(s) if s == "sizeof" => {
                self.bump();
                if self.peek_kind().is_punct("(") {
                    self.skip_parens();
                } else {
                    let _ = self.parse_unary();
                }
                CExpr::new(CExprKind::Sizeof, span)
            }
            CTokenKind::Punct("(") if self.cast_ahead() => {
                self.bump(); // (
                let base = self.parse_base_type();
                let mut ty = base;
                while self.eat_punct("*") {
                    ty = ty.ptr();
                }
                self.expect_punct(")");
                let inner = self.parse_unary();
                CExpr::new(CExprKind::Cast(ty, Box::new(inner)), span)
            }
            _ => self.parse_postfix(),
        }
    }

    /// Whether `( … )` starting here is a cast.
    fn cast_ahead(&self) -> bool {
        let CTokenKind::Ident(s) = self.peek_kind_at(1) else { return false };
        if TYPE_WORDS.contains(&s.as_str()) || self.typedefs.contains_key(s) {
            return true;
        }
        // unknown ident: treat `(Foo *) e` / `(Foo) e` as cast when followed
        // by stars then `)`, and the `)` is followed by something castable
        let mut n = 2usize;
        while self.peek_kind_at(n).is_punct("*") {
            n += 1;
        }
        if !self.peek_kind_at(n).is_punct(")") {
            return false;
        }
        if n > 2 {
            // `(Foo *)` — always a cast
            matches!(
                self.peek_kind_at(n + 1),
                CTokenKind::Ident(_) | CTokenKind::Int(_) | CTokenKind::Punct("(")
            )
        } else {
            // `(Foo) x` — juxtaposition is not valid C expression syntax,
            // so this must be a cast; `(f)(x)` stays a call
            matches!(
                self.peek_kind_at(n + 1),
                CTokenKind::Ident(_) | CTokenKind::Int(_) | CTokenKind::Str(_)
            )
        }
    }

    fn parse_postfix(&mut self) -> CExpr {
        let mut e = self.parse_primary();
        loop {
            let span = self.span();
            match self.peek_kind().clone() {
                CTokenKind::Punct("(") => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.peek_kind().is_punct(")") {
                        loop {
                            args.push(self.parse_assign_expr());
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")");
                    let espan = e.span;
                    e = CExpr::new(CExprKind::Call(Box::new(e), args), espan);
                }
                CTokenKind::Punct("[") => {
                    self.bump();
                    let idx = self.parse_expr();
                    self.expect_punct("]");
                    let espan = e.span;
                    e = CExpr::new(CExprKind::Index(Box::new(e), Box::new(idx)), espan);
                }
                CTokenKind::Punct(".") => {
                    self.bump();
                    let field = self.take_ident_or("field");
                    let espan = e.span;
                    e = CExpr::new(CExprKind::Member(Box::new(e), field, false), espan);
                }
                CTokenKind::Punct("->") => {
                    self.bump();
                    let field = self.take_ident_or("field");
                    let espan = e.span;
                    e = CExpr::new(CExprKind::Member(Box::new(e), field, true), espan);
                }
                CTokenKind::Punct(p @ ("++" | "--")) => {
                    self.bump();
                    e = CExpr::new(CExprKind::Postfix(Box::new(e), p), span);
                }
                _ => return e,
            }
        }
    }

    fn take_ident_or(&mut self, what: &str) -> String {
        match self.peek_kind().clone() {
            CTokenKind::Ident(s) => {
                self.bump();
                s
            }
            _ => {
                self.error(format!("expected {what} name"));
                String::new()
            }
        }
    }

    fn parse_primary(&mut self) -> CExpr {
        let span = self.span();
        match self.peek_kind().clone() {
            CTokenKind::Int(n) => {
                self.bump();
                CExpr::new(CExprKind::Int(n), span)
            }
            CTokenKind::Char(c) => {
                self.bump();
                CExpr::new(CExprKind::Int(c), span)
            }
            CTokenKind::Float(f) => {
                self.bump();
                CExpr::new(CExprKind::Float(f), span)
            }
            CTokenKind::Str(s) => {
                self.bump();
                CExpr::new(CExprKind::Str(s), span)
            }
            CTokenKind::Ident(s) => {
                self.bump();
                CExpr::new(CExprKind::Ident(s), span)
            }
            CTokenKind::Punct("(") => {
                self.bump();
                let e = self.parse_expr();
                self.expect_punct(")");
                e
            }
            _ => {
                self.error("expected expression");
                self.bump();
                CExpr::new(CExprKind::Int(0), span)
            }
        }
    }
}

/// `CAMLparam0` … `CAMLparam5`, `CAMLxparam1` … — register existing
/// variables.
pub fn is_caml_param_macro(name: &str) -> bool {
    name.strip_prefix("CAMLparam")
        .or_else(|| name.strip_prefix("CAMLxparam"))
        .is_some_and(|rest| rest.len() == 1 && rest.chars().all(|c| c.is_ascii_digit()))
}

/// `CAMLlocal1` … `CAMLlocal5`, `CAMLlocalN` — declare and register.
pub fn is_caml_local_macro(name: &str) -> bool {
    name.strip_prefix("CAMLlocal").is_some_and(|rest| {
        rest.len() == 1 && (rest.chars().all(|c| c.is_ascii_digit()) || rest == "N")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> CUnit {
        parse(FileId::from_raw(0), src)
    }

    fn one_fn(src: &str) -> CFunction {
        let u = parse_src(src);
        assert!(u.errors.is_empty(), "{:?}", u.errors);
        assert_eq!(u.functions.len(), 1, "{:#?}", u.functions);
        u.functions.into_iter().next().unwrap()
    }

    #[test]
    fn parses_simple_glue_function() {
        let f = one_fn(
            r#"
            value ml_add(value a, value b) {
                return Val_int(Int_val(a) + Int_val(b));
            }
            "#,
        );
        assert_eq!(f.name, "ml_add");
        assert_eq!(f.ret, CTypeExpr::Value);
        assert_eq!(f.params.len(), 2);
        let body = f.body.unwrap();
        assert_eq!(body.len(), 1);
        assert!(matches!(body[0].kind, CStmtKind::Return(Some(_))));
    }

    #[test]
    fn parses_camlprim_qualifier() {
        let f = one_fn("CAMLprim value f(value x) { return x; }");
        assert_eq!(f.name, "f");
    }

    #[test]
    fn parses_caml_macros() {
        let f = one_fn(
            r#"
            value f(value a, value b) {
                CAMLparam2(a, b);
                CAMLlocal1(res);
                res = a;
                CAMLreturn(res);
            }
            "#,
        );
        let body = f.body.unwrap();
        assert!(matches!(
            &body[0].kind,
            CStmtKind::CamlProtect { names, declares: false } if names == &vec!["a".to_string(), "b".to_string()]
        ));
        assert!(matches!(
            &body[1].kind,
            CStmtKind::CamlProtect { names, declares: true } if names == &vec!["res".to_string()]
        ));
        assert!(matches!(&body[3].kind, CStmtKind::CamlReturn(Some(_))));
    }

    #[test]
    fn parses_if_else_and_while() {
        let f = one_fn(
            r#"
            int f(int x) {
                int n = 0;
                if (x > 0) { n = 1; } else n = 2;
                while (n < 10) n++;
                return n;
            }
            "#,
        );
        let body = f.body.unwrap();
        assert!(matches!(body[1].kind, CStmtKind::If { .. }));
        assert!(matches!(body[2].kind, CStmtKind::While { .. }));
    }

    #[test]
    fn parses_switch_with_cases() {
        let f = one_fn(
            r#"
            int f(value x) {
                switch (Tag_val(x)) {
                    case 0: return 1;
                    case 1: break;
                    default: return 3;
                }
                return 0;
            }
            "#,
        );
        let body = f.body.unwrap();
        let CStmtKind::Switch { cases, .. } = &body[0].kind else { panic!() };
        assert_eq!(cases.len(), 3);
        assert_eq!(cases[0].value, Some(0));
        assert!(!cases[0].falls_through);
        assert_eq!(cases[2].value, None);
    }

    #[test]
    fn parses_for_loop_with_decl() {
        let f = one_fn("int f(void) { int s = 0; for (int i = 0; i < 4; i++) s += i; return s; }");
        let body = f.body.unwrap();
        assert!(matches!(body[1].kind, CStmtKind::For { .. }));
    }

    #[test]
    fn parses_casts_and_field_macro() {
        let f = one_fn(
            r#"
            value f(value v) {
                value x = Field(v, 0);
                long n = (long) x;
                char *p = (char *) Field(v, 1);
                return Val_int((int) n);
            }
            "#,
        );
        let body = f.body.unwrap();
        assert_eq!(body.len(), 4);
        let CStmtKind::Decl { init: Some(init), .. } = &body[1].kind else { panic!() };
        assert!(matches!(init.kind, CExprKind::Cast(CTypeExpr::Int, _)));
    }

    #[test]
    fn parses_unknown_library_types() {
        let u = parse_src(
            r#"
            value ml_open(value path) {
                gzFile f;
                SSL *ssl = NULL;
                f = gzopen(String_val(path), "rb");
                return Val_unit;
            }
            "#,
        );
        assert!(u.errors.is_empty(), "{:?}", u.errors);
        let body = u.functions[0].body.as_ref().unwrap();
        assert!(matches!(
            &body[0].kind,
            CStmtKind::Decl { ty: CTypeExpr::Named(n), .. } if n == "gzFile"
        ));
        assert!(matches!(&body[1].kind, CStmtKind::Decl { ty: CTypeExpr::Ptr(_), .. }));
    }

    #[test]
    fn parses_typedef_and_use() {
        let u = parse_src("typedef struct win Window;\nvalue f(value x) { Window *w; return x; }");
        assert!(u.errors.is_empty(), "{:?}", u.errors);
        let body = u.functions[0].body.as_ref().unwrap();
        assert!(matches!(&body[0].kind, CStmtKind::Decl { .. }));
    }

    #[test]
    fn parses_globals_and_prototypes() {
        let u = parse_src(
            r#"
            static value cached;
            int helper(int x);
            extern int errno_like;
            "#,
        );
        assert_eq!(u.globals.len(), 2);
        assert_eq!(u.functions.len(), 1);
        assert!(u.functions[0].body.is_none());
    }

    #[test]
    fn parses_goto_and_labels() {
        let f = one_fn(
            r#"
            int f(int x) {
                if (x) goto out;
                x = 1;
            out:
                return x;
            }
            "#,
        );
        let body = f.body.unwrap();
        assert!(body.iter().any(|s| matches!(&s.kind, CStmtKind::Label(l) if l == "out")));
    }

    #[test]
    fn parses_ternary_and_logical() {
        let f = one_fn("int f(int a, int b) { return a && b ? a : b || !a; }");
        let body = f.body.unwrap();
        let CStmtKind::Return(Some(e)) = &body[0].kind else { panic!() };
        assert!(matches!(e.kind, CExprKind::Ternary(..)));
    }

    #[test]
    fn parses_member_access_and_calls() {
        let f =
            one_fn("int f(struct buf *b) { b->len = b->len + 1; return use(b->data, (*b).len); }");
        assert_eq!(f.params[0].ty, CTypeExpr::Named("buf".into()).ptr());
    }

    #[test]
    fn multi_declarator_statement() {
        let f = one_fn("int f(void) { int a = 1, b = 2; return a + b; }");
        let body = f.body.unwrap();
        assert!(matches!(&body[0].kind, CStmtKind::Block(ds) if ds.len() == 2));
    }

    #[test]
    fn do_while_loop() {
        let f = one_fn("int f(int n) { do { n--; } while (n > 0); return n; }");
        let body = f.body.unwrap();
        assert!(matches!(body[0].kind, CStmtKind::DoWhile { .. }));
    }

    #[test]
    fn varargs_prototype() {
        let u = parse_src("int printf(const char *fmt, ...);");
        assert_eq!(u.functions.len(), 1);
        assert_eq!(u.functions[0].params.len(), 1);
    }

    #[test]
    fn recovers_from_garbage() {
        let u = parse_src("@@@ ; value f(value x) { return x; }");
        assert_eq!(u.functions.len(), 1);
    }

    #[test]
    fn array_local_becomes_pointer() {
        let f = one_fn("int f(void) { int buf[16]; return buf[0]; }");
        let body = f.body.unwrap();
        assert!(matches!(&body[0].kind, CStmtKind::Decl { ty: CTypeExpr::Ptr(_), .. }));
    }

    #[test]
    fn function_pointer_param() {
        let f = one_fn("int apply(int (*fn)(int), int x) { return fn(x); }");
        assert_eq!(f.params[0].ty, CTypeExpr::FuncPtr);
    }
}
