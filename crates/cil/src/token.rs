//! Tokens of the C glue-code sublanguage.

use ffisafe_support::Span;

/// A lexed C token.
#[derive(Clone, Debug, PartialEq)]
pub enum CTokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// String literal (unescaped contents).
    Str(String),
    /// Character literal (its value).
    Char(i64),
    /// Punctuation / operator, e.g. `"+"`, `"->"`, `"<<="`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl CTokenKind {
    /// Whether this token is the identifier `kw`.
    pub fn is_ident(&self, kw: &str) -> bool {
        matches!(self, CTokenKind::Ident(s) if s == kw)
    }

    /// Whether this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, CTokenKind::Punct(s) if *s == p)
    }

    /// Identifier text, if any.
    pub fn ident(&self) -> Option<&str> {
        match self {
            CTokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct CToken {
    /// Kind and payload.
    pub kind: CTokenKind,
    /// Source span.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(CTokenKind::Ident("value".into()).is_ident("value"));
        assert!(!CTokenKind::Ident("value".into()).is_ident("int"));
        assert!(CTokenKind::Punct("->").is_punct("->"));
        assert_eq!(CTokenKind::Ident("x".into()).ident(), Some("x"));
        assert_eq!(CTokenKind::Int(3).ident(), None);
    }
}
