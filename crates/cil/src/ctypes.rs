//! Source-level C types as they appear in glue code (the paper's `ctype`
//! grammar of Figure 1b, extended with the forms real glue code uses).

/// A C type expression parsed from source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CTypeExpr {
    /// `void`.
    Void,
    /// Any integer type (`int`, `long`, `char`, `unsigned …`, `size_t`).
    Int,
    /// Any floating type (`float`, `double`).
    Float,
    /// The OCaml `value` type.
    Value,
    /// Pointer to another type.
    Ptr(Box<CTypeExpr>),
    /// A named type we treat opaquely (`struct foo`, library typedefs such
    /// as `gzFile`).
    Named(String),
    /// A function pointer; calls through these are imprecision (§5.1).
    FuncPtr,
    /// Synthesized temporaries with no declared type; maps to a fresh
    /// inference variable.
    Auto,
}

impl CTypeExpr {
    /// Convenience: pointer to `self`.
    pub fn ptr(self) -> CTypeExpr {
        CTypeExpr::Ptr(Box::new(self))
    }

    /// Whether the type is exactly `value`.
    pub fn is_value(&self) -> bool {
        matches!(self, CTypeExpr::Value)
    }

    /// Whether a `value` occurs anywhere inside (for the address-of and
    /// global-variable heuristics of §5.1).
    pub fn contains_value(&self) -> bool {
        match self {
            CTypeExpr::Value => true,
            CTypeExpr::Ptr(inner) => inner.contains_value(),
            _ => false,
        }
    }
}

impl std::fmt::Display for CTypeExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CTypeExpr::Void => write!(f, "void"),
            CTypeExpr::Int => write!(f, "int"),
            CTypeExpr::Float => write!(f, "double"),
            CTypeExpr::Value => write!(f, "value"),
            CTypeExpr::Ptr(inner) => write!(f, "{inner} *"),
            CTypeExpr::Named(n) => write!(f, "{n}"),
            CTypeExpr::FuncPtr => write!(f, "<fnptr>"),
            CTypeExpr::Auto => write!(f, "<auto>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_value_through_pointers() {
        assert!(CTypeExpr::Value.contains_value());
        assert!(CTypeExpr::Value.ptr().contains_value());
        assert!(!CTypeExpr::Int.ptr().contains_value());
    }

    #[test]
    fn display_forms() {
        assert_eq!(CTypeExpr::Int.ptr().to_string(), "int *");
        assert_eq!(CTypeExpr::Named("gzFile".into()).to_string(), "gzFile");
    }
}
