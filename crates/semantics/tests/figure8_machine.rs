//! Table-driven execution of the Figure 8 examination program over every
//! constructor of `type t = A of int | B | C of int * int | D`: each of
//! the four dynamic shapes must dispatch to its own branch and finish.

use ffisafe_semantics::check::{check, compatible, Gamma};
use ffisafe_semantics::machine::{Block, Machine, Outcome, Stores};
use ffisafe_semantics::syntax::{Program, SExpr, SStmt, Value};
use ffisafe_semantics::types::{GCt, GMt};

fn type_t() -> GMt {
    GMt::sum(2, vec![vec![GMt::int()], vec![GMt::int(), GMt::int()]])
}

/// Builds Γ/stores with `x` bound to the given runtime value (and blocks
/// for the boxed constructors).
fn world(x: Value) -> (Gamma, Stores) {
    let t = type_t();
    let mut gamma = Gamma::default();
    // block 0: A 7   (tag 0), block 1: C (3, 4) (tag 1)
    gamma.blocks.insert(0, (t.clone(), 0));
    gamma.blocks.insert(1, (t.clone(), 1));
    gamma.vars.insert("x".into(), GCt::Value(t));
    gamma.vars.insert("r".into(), GCt::Int);
    let mut stores = Stores::default();
    stores.sml.insert(0, Block { tag: 0, fields: vec![Value::MlInt(7)] });
    stores.sml.insert(1, Block { tag: 1, fields: vec![Value::MlInt(3), Value::MlInt(4)] });
    stores.v.insert("x".into(), x);
    stores.v.insert("r".into(), Value::CInt(-1));
    (gamma, stores)
}

/// The Figure 8 program: full four-way dispatch writing a distinct result
/// per constructor.
fn examine() -> Program {
    use SExpr as E;
    use SStmt as S;
    let field = |idx: i64| {
        E::IntVal(Box::new(E::Deref(Box::new(E::PtrAdd(
            Box::new(E::var("x")),
            Box::new(E::cint(idx)),
        )))))
    };
    Program::new(vec![
        S::IfUnboxed("x".into(), "unboxed".into()),
        S::IfSumTag("x".into(), 0, "tag_a".into()),
        S::IfSumTag("x".into(), 1, "tag_c".into()),
        S::Goto("end".into()),
        S::Label("tag_a".into()),
        S::AssignVar("r".into(), field(0)),
        S::Goto("end".into()),
        S::Label("tag_c".into()),
        S::AssignVar("r".into(), E::Aop("+", Box::new(field(0)), Box::new(field(1)))),
        S::Goto("end".into()),
        S::Label("unboxed".into()),
        S::IfIntTag("x".into(), 0, "b".into()),
        S::IfIntTag("x".into(), 1, "d".into()),
        S::Goto("end".into()),
        S::Label("b".into()),
        S::AssignVar("r".into(), E::cint(100)),
        S::Goto("end".into()),
        S::Label("d".into()),
        S::AssignVar("r".into(), E::cint(200)),
        S::Goto("end".into()),
        S::Label("end".into()),
    ])
}

#[test]
fn all_four_constructors_dispatch_correctly() {
    let cases = [
        (Value::MlInt(0), 100),                    // B
        (Value::MlInt(1), 200),                    // D
        (Value::MlLoc { base: 0, off: 0 }, 7),     // A 7
        (Value::MlLoc { base: 1, off: 0 }, 3 + 4), // C (3, 4)
    ];
    let program = examine();
    assert!(program.well_formed());
    for (val, expected) in cases {
        let (gamma, stores) = world(val);
        compatible(&gamma, &stores).unwrap_or_else(|e| panic!("{val:?}: {e}"));
        check(&program, &gamma).unwrap_or_else(|e| panic!("{val:?}: {e}"));
        match Machine::new(&program, stores).run(10_000) {
            Outcome::Finished(s) => {
                assert_eq!(s.v["r"], Value::CInt(expected), "constructor {val:?}");
            }
            other => panic!("{val:?}: {other:?}"),
        }
    }
}

#[test]
fn wrong_int_tag_falls_through() {
    // x = {5} is outside t's nullary constructors; the checker rejects the
    // program only if it *tests* beyond Ψ — here the value itself violates
    // compatibility instead
    let (gamma, mut stores) = world(Value::MlInt(5));
    stores.v.insert("x".into(), Value::MlInt(5));
    assert!(compatible(&gamma, &stores).is_err());
}

#[test]
fn interior_pointer_value_violates_compatibility() {
    let (gamma, mut stores) = world(Value::MlLoc { base: 1, off: 1 });
    stores.v.insert("x".into(), Value::MlLoc { base: 1, off: 1 });
    assert!(compatible(&gamma, &stores).is_err(), "unsafe values cannot inhabit Γ");
}
