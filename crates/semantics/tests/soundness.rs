//! Executable soundness (DESIGN.md experiment E4): the property-based
//! counterpart of Theorem 1.
//!
//! *If `Γ ∼ ⟨S_C, S_ML, V⟩` and the program checks under `Γ`, execution
//! never gets stuck* — validated over randomized worlds, programs and
//! adversarial mutants.

use ffisafe_semantics::check::{check, compatible};
use ffisafe_semantics::generate::{gen_program, gen_world, mutate};
use ffisafe_semantics::machine::{Machine, Outcome};
use ffisafe_support::rng::Rng64;

const STEP_BUDGET: usize = 100_000;
const CASES: usize = 256;

fn case_seeds(salt: u64) -> impl Iterator<Item = u64> {
    let mut rng = Rng64::seed_from_u64(0x5001D ^ salt);
    (0..CASES).map(move |_| rng.gen_range(0u64..100_000))
}

/// Generator coherence: worlds are compatible, programs well-formed
/// and accepted by the checker.
#[test]
fn prop_generator_produces_well_typed_programs() {
    for seed in case_seeds(1) {
        let world = gen_world(seed);
        assert!(compatible(&world.gamma, &world.stores).is_ok());
        let program = gen_program(&world, seed);
        assert!(program.well_formed());
        if let Err(e) = check(&program, &world.gamma) {
            panic!("checker rejected generated program (seed {seed}): {e}");
        }
    }
}

/// Theorem 1 on generated programs: never stuck.
#[test]
fn prop_well_typed_programs_never_get_stuck() {
    for seed in case_seeds(2) {
        let world = gen_world(seed);
        let program = gen_program(&world, seed);
        let outcome = Machine::new(&program, world.stores.clone()).run(STEP_BUDGET);
        assert!(!outcome.is_stuck(), "seed {seed}: {outcome:?}");
    }
}

/// Theorem 1 on adversarial programs: any mutant the checker still
/// accepts must also never get stuck.
#[test]
fn prop_accepted_mutants_never_get_stuck() {
    let mut rng = Rng64::seed_from_u64(0x5001D ^ 3);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..100_000);
        let salt = rng.gen_range(0u64..64);
        let world = gen_world(seed);
        let program = gen_program(&world, seed);
        let mutant = mutate(&program, seed.wrapping_add(salt));
        if !mutant.well_formed() {
            continue;
        }
        if check(&mutant, &world.gamma).is_ok() {
            let outcome = Machine::new(&mutant, world.stores.clone()).run(STEP_BUDGET);
            assert!(!outcome.is_stuck(), "seed {seed} salt {salt}: {outcome:?}");
        }
    }
}

/// Execution preserves compatibility (the subject-reduction half):
/// final stores of a finished run still inhabit Γ.
#[test]
fn prop_execution_preserves_compatibility() {
    for seed in case_seeds(4) {
        let world = gen_world(seed);
        let program = gen_program(&world, seed);
        if let Outcome::Finished(stores) =
            Machine::new(&program, world.stores.clone()).run(STEP_BUDGET)
        {
            assert!(
                compatible(&world.gamma, &stores).is_ok(),
                "seed {seed}: final stores incompatible"
            );
        }
    }
}

/// Deterministic regression corpus: a fixed sweep of seeds run in CI every
/// time (faster to debug than proptest shrinking).
#[test]
fn soundness_seed_sweep() {
    for seed in 0..400u64 {
        let world = gen_world(seed);
        compatible(&world.gamma, &world.stores).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let program = gen_program(&world, seed);
        assert!(program.well_formed(), "seed {seed}");
        check(&program, &world.gamma).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let outcome = Machine::new(&program, world.stores.clone()).run(STEP_BUDGET);
        assert!(!outcome.is_stuck(), "seed {seed}: {outcome:?}");
    }
}

/// The checker must reject a healthy fraction of mutants — otherwise the
/// soundness property above would be vacuous.
#[test]
fn mutation_kill_rate_is_nontrivial() {
    let mut total = 0usize;
    let mut rejected = 0usize;
    let mut stuck_unchecked = 0usize;
    for seed in 0..400u64 {
        let world = gen_world(seed);
        let program = gen_program(&world, seed);
        if program.is_empty() {
            continue;
        }
        let mutant = mutate(&program, seed);
        if mutant.stmts == program.stmts || !mutant.well_formed() {
            continue;
        }
        total += 1;
        match check(&mutant, &world.gamma) {
            Err(_) => {
                rejected += 1;
                // rejected mutants may genuinely get stuck — count them to
                // show the checker is catching real dangers
                if Machine::new(&mutant, world.stores.clone()).run(50_000).is_stuck() {
                    stuck_unchecked += 1;
                }
            }
            Ok(()) => {
                let outcome = Machine::new(&mutant, world.stores.clone()).run(50_000);
                assert!(!outcome.is_stuck(), "seed {seed}: accepted mutant stuck: {outcome:?}");
            }
        }
    }
    assert!(total >= 100, "too few distinct mutants: {total}");
    assert!(rejected * 10 >= total, "checker rejected only {rejected}/{total} mutants");
    assert!(stuck_unchecked > 0, "no rejected mutant actually got stuck — mutations too tame");
}
