//! Executable semantics and soundness harness for the restricted
//! multi-lingual language of the paper's appendix (§4, Figures 10–14).
//!
//! The paper proves Theorem 1 (Soundness): a well-typed statement either
//! diverges or reduces to `()` — it never gets *stuck*. This crate makes
//! that theorem executable:
//!
//! * [`syntax`] — the restricted grammar (Figure 10) in linear form with a
//!   label map `D`;
//! * [`machine`] — the small-step reduction rules of Figure 12 over the
//!   three stores `S_C`, `S_ML`, `V`, with precise stuck detection;
//! * [`mod@check`] — the ground checking rules of Figures 13/14 and the
//!   store-compatibility relation of Definition 4;
//! * [`generate`] — seeds random well-typed worlds/programs and mutants,
//!   so the soundness suite can validate `checked ⇒ never stuck` across
//!   thousands of configurations.
//!
//! # Examples
//!
//! ```
//! use ffisafe_semantics::generate::{gen_world, gen_program};
//! use ffisafe_semantics::check::{check, compatible};
//! use ffisafe_semantics::machine::Machine;
//!
//! let world = gen_world(42);
//! let program = gen_program(&world, 42);
//! compatible(&world.gamma, &world.stores).unwrap();
//! check(&program, &world.gamma).unwrap();
//! let outcome = Machine::new(&program, world.stores.clone()).run(10_000);
//! assert!(!outcome.is_stuck());
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod generate;
pub mod machine;
pub mod syntax;
pub mod types;

pub use check::{check, compatible, Gamma, TypeError};
pub use machine::{Block, Machine, Outcome, Stores, Stuck};
pub use syntax::{Program, SExpr, SStmt, Value};
pub use types::{GCt, GMt, GPsi};
