//! The small-step operational semantics of Figure 12, executable.
//!
//! Configurations are `⟨S_C, S_ML, V, pc⟩` over a linear [`Program`]. The
//! machine either terminates (runs past the end — the `()` statement),
//! exhausts its step budget ("diverges"), or gets **stuck** — the outcome
//! Theorem 1 (Soundness) rules out for well-typed programs.

use crate::syntax::{Program, SExpr, SStmt, Value};
use std::collections::HashMap;

/// A structured block on the OCaml heap: a tag plus fields
/// (`S_ML({l + -1})` is the tag).
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Runtime tag.
    pub tag: i64,
    /// Field values.
    pub fields: Vec<Value>,
}

/// The three stores of the semantics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stores {
    /// `S_C`: C locations.
    pub sc: HashMap<u32, Value>,
    /// `S_ML`: OCaml heap blocks by base location.
    pub sml: HashMap<u32, Block>,
    /// `V`: local variables.
    pub v: HashMap<String, Value>,
}

/// Why a configuration could not reduce — exactly the side conditions of
/// Figure 12 failing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stuck {
    /// Read of an unbound variable.
    UnboundVar(String),
    /// `*l` with `l ∉ dom(S_C)`.
    BadCLoc(u32),
    /// `*{l+n}` outside any block or out of bounds.
    BadMlLoc(u32, i64),
    /// Arithmetic on non-integers.
    AopOnNonInt,
    /// Pointer arithmetic on incompatible operands (o-c-add allows only
    /// `l +p 0`).
    BadPtrAdd,
    /// `Val_int` of a non-C-integer.
    ValIntOnNonInt,
    /// `Int_val` of a non-OCaml-integer.
    IntValOnNonImmediate,
    /// A conditional examined a value of the wrong kind.
    BadTest,
    /// Branch to an unknown label.
    BadLabel(String),
    /// Store through a non-location.
    BadStore,
}

impl std::fmt::Display for Stuck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stuck::UnboundVar(x) => write!(f, "unbound variable `{x}`"),
            Stuck::BadCLoc(l) => write!(f, "dangling C location {l}"),
            Stuck::BadMlLoc(l, n) => write!(f, "invalid OCaml heap access {{{l}+{n}}}"),
            Stuck::AopOnNonInt => write!(f, "arithmetic on a non-integer"),
            Stuck::BadPtrAdd => write!(f, "invalid pointer arithmetic"),
            Stuck::ValIntOnNonInt => write!(f, "Val_int of a non-integer"),
            Stuck::IntValOnNonImmediate => write!(f, "Int_val of a non-immediate"),
            Stuck::BadTest => write!(f, "dynamic test on a value of the wrong kind"),
            Stuck::BadLabel(l) => write!(f, "branch to unknown label `{l}`"),
            Stuck::BadStore => write!(f, "store through a non-location"),
        }
    }
}

/// Result of running a program to completion.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Reduced to `()` — ran past the end of the statement list.
    Finished(Stores),
    /// Step budget exhausted (treated as divergence).
    Diverged(Stores),
    /// A reduction rule's side conditions failed.
    Stuck {
        /// What failed.
        reason: Stuck,
        /// Index of the offending statement.
        at: usize,
    },
}

impl Outcome {
    /// Whether the run got stuck.
    pub fn is_stuck(&self) -> bool {
        matches!(self, Outcome::Stuck { .. })
    }
}

/// The machine: a program under execution.
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    /// Current stores.
    pub stores: Stores,
    /// Program counter.
    pub pc: usize,
}

impl<'p> Machine<'p> {
    /// Creates a machine at `pc = 0` with the given initial stores.
    pub fn new(program: &'p Program, stores: Stores) -> Self {
        Machine { program, stores, pc: 0 }
    }

    /// Evaluates an expression (expressions are side-effect free).
    pub fn eval(&self, e: &SExpr) -> Result<Value, Stuck> {
        match e {
            SExpr::Lit(v, _) => Ok(*v),
            SExpr::Var(x) => {
                self.stores.v.get(x).copied().ok_or_else(|| Stuck::UnboundVar(x.clone()))
            }
            SExpr::Deref(inner) => match self.eval(inner)? {
                Value::CLoc(l) => self.stores.sc.get(&l).copied().ok_or(Stuck::BadCLoc(l)),
                Value::MlLoc { base, off } => {
                    let block = self.stores.sml.get(&base).ok_or(Stuck::BadMlLoc(base, off))?;
                    usize::try_from(off)
                        .ok()
                        .and_then(|o| block.fields.get(o))
                        .copied()
                        .ok_or(Stuck::BadMlLoc(base, off))
                }
                _ => Err(Stuck::BadTest),
            },
            SExpr::Aop(op, a, b) => match (self.eval(a)?, self.eval(b)?) {
                (Value::CInt(x), Value::CInt(y)) => Ok(Value::CInt(apply_aop(op, x, y))),
                _ => Err(Stuck::AopOnNonInt),
            },
            SExpr::PtrAdd(a, b) => match (self.eval(a)?, self.eval(b)?) {
                // o-ml-add
                (Value::MlLoc { base, off }, Value::CInt(m)) => {
                    Ok(Value::MlLoc { base, off: off + m })
                }
                // o-c-add permits only the trivial offset
                (Value::CLoc(l), Value::CInt(0)) => Ok(Value::CLoc(l)),
                _ => Err(Stuck::BadPtrAdd),
            },
            SExpr::ValInt(inner, _) => match self.eval(inner)? {
                Value::CInt(n) => Ok(Value::MlInt(n)),
                _ => Err(Stuck::ValIntOnNonInt),
            },
            SExpr::IntVal(inner) => match self.eval(inner)? {
                Value::MlInt(n) => Ok(Value::CInt(n)),
                _ => Err(Stuck::IntValOnNonImmediate),
            },
        }
    }

    /// Performs one statement step. `Ok(true)` means the program finished.
    pub fn step(&mut self) -> Result<bool, Stuck> {
        let Some(stmt) = self.program.stmts.get(self.pc) else {
            return Ok(true);
        };
        match stmt.clone() {
            SStmt::Skip | SStmt::Label(_) => {
                self.pc += 1;
            }
            SStmt::Goto(l) => {
                self.pc = self.program.label(&l).ok_or(Stuck::BadLabel(l))?;
                self.pc += 1; // start after the label mark
            }
            SStmt::AssignVar(x, e) => {
                let v = self.eval(&e)?;
                self.stores.v.insert(x, v);
                self.pc += 1;
            }
            SStmt::AssignMem(base, n, rhs) => {
                let addr = self.eval(&SExpr::PtrAdd(Box::new(base), Box::new(SExpr::cint(n))))?;
                let v = self.eval(&rhs)?;
                match addr {
                    // o-c-assign
                    Value::CLoc(l) => {
                        if !self.stores.sc.contains_key(&l) {
                            return Err(Stuck::BadCLoc(l));
                        }
                        self.stores.sc.insert(l, v);
                    }
                    // o-ml-assign
                    Value::MlLoc { base, off } => {
                        let block =
                            self.stores.sml.get_mut(&base).ok_or(Stuck::BadMlLoc(base, off))?;
                        let slot = usize::try_from(off)
                            .ok()
                            .and_then(|o| block.fields.get_mut(o))
                            .ok_or(Stuck::BadMlLoc(base, off))?;
                        *slot = v;
                    }
                    _ => return Err(Stuck::BadStore),
                }
                self.pc += 1;
            }
            SStmt::If(e, l) => match self.eval(&e)? {
                Value::CInt(0) => self.pc += 1,
                Value::CInt(_) => {
                    self.pc = self.program.label(&l).ok_or(Stuck::BadLabel(l))? + 1;
                }
                _ => return Err(Stuck::BadTest),
            },
            SStmt::IfUnboxed(x, l) => {
                match *self.stores.v.get(&x).ok_or(Stuck::UnboundVar(x.clone()))? {
                    // o-iflong
                    Value::MlInt(_) => {
                        self.pc = self.program.label(&l).ok_or(Stuck::BadLabel(l))? + 1;
                    }
                    // o-iflong2 — requires a safe pointer {l + 0}
                    Value::MlLoc { off: 0, .. } => self.pc += 1,
                    _ => return Err(Stuck::BadTest),
                }
            }
            SStmt::IfSumTag(x, n, l) => {
                match *self.stores.v.get(&x).ok_or(Stuck::UnboundVar(x.clone()))? {
                    Value::MlLoc { base, off: 0 } => {
                        let tag = self.stores.sml.get(&base).ok_or(Stuck::BadMlLoc(base, -1))?.tag;
                        if tag == n {
                            self.pc = self.program.label(&l).ok_or(Stuck::BadLabel(l))? + 1;
                        } else {
                            self.pc += 1;
                        }
                    }
                    _ => return Err(Stuck::BadTest),
                }
            }
            SStmt::IfIntTag(x, n, l) => {
                match *self.stores.v.get(&x).ok_or(Stuck::UnboundVar(x.clone()))? {
                    Value::MlInt(m) => {
                        if m == n {
                            self.pc = self.program.label(&l).ok_or(Stuck::BadLabel(l))? + 1;
                        } else {
                            self.pc += 1;
                        }
                    }
                    _ => return Err(Stuck::BadTest),
                }
            }
        }
        Ok(self.pc >= self.program.stmts.len())
    }

    /// Runs up to `max_steps`.
    pub fn run(mut self, max_steps: usize) -> Outcome {
        for _ in 0..max_steps {
            match self.step() {
                Ok(true) => return Outcome::Finished(self.stores),
                Ok(false) => {}
                Err(reason) => return Outcome::Stuck { reason, at: self.pc },
            }
        }
        Outcome::Diverged(self.stores)
    }
}

fn apply_aop(op: &str, a: i64, b: i64) -> i64 {
    match op {
        "+" => a.wrapping_add(b),
        "-" => a.wrapping_sub(b),
        "*" => a.wrapping_mul(b),
        "==" => (a == b) as i64,
        "!=" => (a != b) as i64,
        "<" => (a < b) as i64,
        "<=" => (a <= b) as i64,
        ">" => (a > b) as i64,
        ">=" => (a >= b) as i64,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GMt;

    fn world() -> Stores {
        let mut s = Stores::default();
        // block 0: tag 1, fields {3}, {4}  (constructor C of int * int)
        s.sml.insert(0, Block { tag: 1, fields: vec![Value::MlInt(3), Value::MlInt(4)] });
        s.sc.insert(0, Value::CInt(7));
        s.v.insert("x".into(), Value::MlLoc { base: 0, off: 0 });
        s.v.insert("i".into(), Value::CInt(5));
        s
    }

    #[test]
    fn eval_deref_ml_block() {
        let p = Program::new(vec![]);
        let m = Machine::new(&p, world());
        let e = SExpr::Deref(Box::new(SExpr::PtrAdd(
            Box::new(SExpr::var("x")),
            Box::new(SExpr::cint(1)),
        )));
        assert_eq!(m.eval(&e), Ok(Value::MlInt(4)));
    }

    #[test]
    fn eval_out_of_bounds_field_is_stuck() {
        let p = Program::new(vec![]);
        let m = Machine::new(&p, world());
        let e = SExpr::Deref(Box::new(SExpr::PtrAdd(
            Box::new(SExpr::var("x")),
            Box::new(SExpr::cint(9)),
        )));
        assert_eq!(m.eval(&e), Err(Stuck::BadMlLoc(0, 9)));
    }

    #[test]
    fn val_int_int_val_roundtrip() {
        let p = Program::new(vec![]);
        let m = Machine::new(&p, world());
        let e = SExpr::IntVal(Box::new(SExpr::ValInt(Box::new(SExpr::var("i")), GMt::int())));
        assert_eq!(m.eval(&e), Ok(Value::CInt(5)));
        // Int_val of a pointer is stuck
        let bad = SExpr::IntVal(Box::new(SExpr::var("x")));
        assert_eq!(m.eval(&bad), Err(Stuck::IntValOnNonImmediate));
    }

    #[test]
    fn sum_tag_dispatch_runs() {
        let p = Program::new(vec![
            SStmt::IfSumTag("x".into(), 1, "one".into()),
            SStmt::AssignVar("r".into(), SExpr::cint(0)),
            SStmt::Goto("end".into()),
            SStmt::Label("one".into()),
            SStmt::AssignVar(
                "r".into(),
                SExpr::IntVal(Box::new(SExpr::Deref(Box::new(SExpr::PtrAdd(
                    Box::new(SExpr::var("x")),
                    Box::new(SExpr::cint(0)),
                ))))),
            ),
            SStmt::Label("end".into()),
        ]);
        assert!(p.well_formed());
        let m = Machine::new(&p, world());
        match m.run(100) {
            Outcome::Finished(s) => assert_eq!(s.v.get("r"), Some(&Value::CInt(3))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unboxed_test_dispatch() {
        let mut s = world();
        s.v.insert("u".into(), Value::MlInt(1));
        let p = Program::new(vec![
            SStmt::IfUnboxed("u".into(), "imm".into()),
            SStmt::AssignVar("r".into(), SExpr::cint(100)),
            SStmt::Goto("end".into()),
            SStmt::Label("imm".into()),
            SStmt::AssignVar("r".into(), SExpr::IntVal(Box::new(SExpr::var("u")))),
            SStmt::Label("end".into()),
        ]);
        match Machine::new(&p, s).run(100) {
            Outcome::Finished(s) => assert_eq!(s.v.get("r"), Some(&Value::CInt(1))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn interior_pointer_boxedness_test_is_stuck() {
        let mut s = world();
        s.v.insert("mid".into(), Value::MlLoc { base: 0, off: 1 });
        let p = Program::new(vec![
            SStmt::Label("l".into()),
            SStmt::IfUnboxed("mid".into(), "l".into()),
        ]);
        let out = Machine::new(&p, s).run(10);
        assert!(out.is_stuck(), "{out:?}");
    }

    #[test]
    fn heap_store_updates_block() {
        let p = Program::new(vec![SStmt::AssignMem(
            SExpr::var("x"),
            1,
            SExpr::ValInt(Box::new(SExpr::cint(42)), GMt::int()),
        )]);
        match Machine::new(&p, world()).run(10) {
            Outcome::Finished(s) => {
                assert_eq!(s.sml[&0].fields[1], Value::MlInt(42));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infinite_loop_diverges() {
        let p = Program::new(vec![SStmt::Label("l".into()), SStmt::Goto("l".into())]);
        let out = Machine::new(&p, world()).run(1000);
        assert!(matches!(out, Outcome::Diverged(_)));
    }

    #[test]
    fn c_pointer_ops() {
        let mut s = world();
        s.v.insert("p".into(), Value::CLoc(0));
        let p = Program::new(vec![
            SStmt::AssignVar("r".into(), SExpr::Deref(Box::new(SExpr::var("p")))),
            SStmt::AssignMem(SExpr::var("p"), 0, SExpr::cint(9)),
        ]);
        match Machine::new(&p, s).run(10) {
            Outcome::Finished(s) => {
                assert_eq!(s.v.get("r"), Some(&Value::CInt(7)));
                assert_eq!(s.sc[&0], Value::CInt(9));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nontrivial_c_pointer_arithmetic_is_stuck() {
        let mut s = world();
        s.v.insert("p".into(), Value::CLoc(0));
        let p = Program::new(vec![SStmt::AssignVar(
            "q".into(),
            SExpr::PtrAdd(Box::new(SExpr::var("p")), Box::new(SExpr::cint(1))),
        )]);
        let out = Machine::new(&p, s).run(10);
        assert!(out.is_stuck());
    }
}
