//! Random generation of *well-typed-by-construction* worlds and programs,
//! plus mutation, for testing the executable form of Theorem 1.
//!
//! The generator builds a ground typing `Γ`, stores compatible with it
//! (Definition 4 by construction) and a program assembled from well-typed
//! fragments. The soundness suite then validates three facts on thousands
//! of random instances:
//!
//! 1. the generator's output is accepted by [`crate::check::check`] and
//!    [`crate::check::compatible`] (generator/checker coherence);
//! 2. accepted programs never get stuck (Theorem 1);
//! 3. random mutants that still pass the checker also never get stuck
//!    (Theorem 1 under adversarial programs), while many mutants are
//!    rejected (the checker is not vacuous).

use crate::check::Gamma;
use crate::machine::{Block, Stores};
use crate::syntax::{Program, SExpr, SStmt, Value};
use crate::types::{GCt, GMt, GPsi};
use ffisafe_support::rng::Rng64 as StdRng;

/// A generated world: typing, compatible stores, and handy indices.
#[derive(Clone, Debug)]
pub struct World {
    /// Ground typing context.
    pub gamma: Gamma,
    /// Stores compatible with `gamma`.
    pub stores: Stores,
    /// For each generated block type: one live instance per tag where
    /// available (used to seed literals of that type).
    pub instances: Vec<(GMt, Vec<u32>)>,
}

/// Generates a world from a seed.
pub fn gen_world(seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gamma = Gamma::default();
    let mut stores = Stores::default();
    let mut instances: Vec<(GMt, Vec<u32>)> = Vec::new();
    let mut next_block: u32 = 0;

    // leaf types usable as fields
    let mut field_types: Vec<GMt> = vec![GMt::int(), GMt::unit(), GMt::enumeration(3)];

    // block types, later ones may reference earlier ones
    let n_types = rng.gen_range(1..=3);
    for _ in 0..n_types {
        let nullary = rng.gen_range(0..=2u32);
        let n_products = rng.gen_range(1..=2usize);
        let mut products = Vec::new();
        for _ in 0..n_products {
            let n_fields = rng.gen_range(1..=3usize);
            let fields: Vec<GMt> = (0..n_fields)
                .map(|_| field_types[rng.gen_range(0..field_types.len())].clone())
                .collect();
            products.push(fields);
        }
        let mt = GMt::sum(nullary, products);
        // create one instance per tag
        let mut bases = Vec::new();
        for tag in 0..mt.sigma.len() {
            let base = next_block;
            next_block += 1;
            let fields: Vec<Value> =
                mt.sigma[tag].iter().map(|fty| initial_value(&mut rng, fty, &instances)).collect();
            stores.sml.insert(base, Block { tag: tag as i64, fields });
            gamma.blocks.insert(base, (mt.clone(), tag as i64));
            bases.push(base);
        }
        instances.push((mt.clone(), bases));
        field_types.push(mt);
    }

    // C locations holding ints
    for l in 0..rng.gen_range(1..=3u32) {
        gamma.clocs.insert(l, GCt::Int);
        stores.sc.insert(l, Value::CInt(rng.gen_range(-5..50)));
    }

    // variables
    let n_vars = rng.gen_range(3..=7usize);
    for i in 0..n_vars {
        let name = format!("x{i}");
        match rng.gen_range(0..4) {
            0 => {
                gamma.vars.insert(name.clone(), GCt::Int);
                stores.v.insert(name, Value::CInt(rng.gen_range(-4..9)));
            }
            1 if !gamma.clocs.is_empty() => {
                let l = *gamma.clocs.keys().next().unwrap();
                gamma.vars.insert(name.clone(), GCt::Int.ptr());
                stores.v.insert(name, Value::CLoc(l));
            }
            _ => {
                // a value variable of one of the generated or leaf types
                let mt = field_types[rng.gen_range(0..field_types.len())].clone();
                let v = initial_value(&mut rng, &mt, &instances);
                gamma.vars.insert(name.clone(), GCt::Value(mt));
                stores.v.insert(name, v);
            }
        }
    }
    World { gamma, stores, instances }
}

/// A value inhabiting `mt`, preferring immediates, falling back to an
/// existing block instance.
fn initial_value(rng: &mut StdRng, mt: &GMt, instances: &[(GMt, Vec<u32>)]) -> Value {
    match mt.psi {
        GPsi::Top => Value::MlInt(rng.gen_range(-3..20)),
        GPsi::Count(k) if k > 0 => Value::MlInt(rng.gen_range(0..k as i64)),
        _ => {
            // must point at a block of this exact type
            for (ty, bases) in instances {
                if ty == mt && !bases.is_empty() {
                    let base = bases[rng.gen_range(0..bases.len())];
                    return Value::MlLoc { base, off: 0 };
                }
            }
            // uninhabited immediates with no instance: fall back to 0; the
            // generator never requests such types for variables
            Value::MlInt(0)
        }
    }
}

/// Generates a well-typed program over `world` from a seed.
pub fn gen_program(world: &World, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(17));
    let mut g = ProgGen { world, rng: &mut rng, stmts: Vec::new(), next_label: 0 };
    let n = g.rng.gen_range(1..=6);
    for _ in 0..n {
        g.fragment();
    }
    Program::new(std::mem::take(&mut g.stmts))
}

struct ProgGen<'w, 'r> {
    world: &'w World,
    rng: &'r mut StdRng,
    stmts: Vec<SStmt>,
    next_label: u32,
}

impl<'w, 'r> ProgGen<'w, 'r> {
    fn label(&mut self) -> String {
        let l = format!("L{}", self.next_label);
        self.next_label += 1;
        l
    }

    fn int_vars(&self) -> Vec<String> {
        self.world
            .gamma
            .vars
            .iter()
            .filter(|(_, ct)| **ct == GCt::Int)
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn value_vars(&self) -> Vec<(String, GMt)> {
        self.world
            .gamma
            .vars
            .iter()
            .filter_map(|(k, ct)| ct.as_value().map(|mt| (k.clone(), mt.clone())))
            .collect()
    }

    fn ptr_vars(&self) -> Vec<String> {
        self.world
            .gamma
            .vars
            .iter()
            .filter(|(_, ct)| matches!(ct, GCt::Ptr(_)))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn fragment(&mut self) {
        match self.rng.gen_range(0..5) {
            0 => self.frag_arith(),
            1 => self.frag_examine(),
            2 => self.frag_cptr(),
            3 => self.frag_loop(),
            _ => self.frag_write(),
        }
    }

    /// `c := a aop b` over int variables/constants.
    fn frag_arith(&mut self) {
        let ints = self.int_vars();
        if ints.is_empty() {
            return;
        }
        let dst = ints[self.rng.gen_range(0..ints.len())].clone();
        let a = self.int_operand(&ints);
        let b = self.int_operand(&ints);
        let op = ["+", "-", "*", "==", "<"][self.rng.gen_range(0..5)];
        self.stmts.push(SStmt::AssignVar(dst, SExpr::Aop(op, Box::new(a), Box::new(b))));
    }

    fn int_operand(&mut self, ints: &[String]) -> SExpr {
        if self.rng.gen_bool(0.5) && !ints.is_empty() {
            SExpr::var(&ints[self.rng.gen_range(0..ints.len())])
        } else {
            SExpr::cint(self.rng.gen_range(-3..9))
        }
    }

    /// The Figure 2 idiom: boxedness test, then tag dispatch with field
    /// reads / int_tag tests.
    fn frag_examine(&mut self) {
        let candidates = self.value_vars();
        let Some((var, mt)) = candidates
            .into_iter()
            .find(|(_, mt)| !mt.sigma.is_empty() || matches!(mt.psi, GPsi::Count(k) if k > 0))
        else {
            return;
        };
        let ints = self.int_vars();
        let l_unboxed = self.label();
        let l_end = self.label();
        self.stmts.push(SStmt::IfUnboxed(var.clone(), l_unboxed.clone()));
        // boxed side (fall-through)
        for tag in 0..mt.sigma.len() {
            let l_tag = self.label();
            self.stmts.push(SStmt::IfSumTag(var.clone(), tag as i64, l_tag.clone()));
            let after = self.label();
            self.stmts.push(SStmt::Goto(after.clone()));
            self.stmts.push(SStmt::Label(l_tag));
            // read a random field
            let fields = &mt.sigma[tag];
            if !fields.is_empty() {
                let idx = self.rng.gen_range(0..fields.len());
                let read = SExpr::Deref(Box::new(SExpr::PtrAdd(
                    Box::new(SExpr::var(&var)),
                    Box::new(SExpr::cint(idx as i64)),
                )));
                // only store it if a variable of the right type exists
                if fields[idx].psi == GPsi::Top && fields[idx].sigma.is_empty() {
                    if let Some(dst) = ints.first() {
                        // field is an int: unwrap it — fields come back at
                        // offset 0 with unknown boxedness, so Int_val is
                        // only legal after a test; use a fresh test
                        let tmp_label = self.label();
                        let v2 = format!("{var}__f");
                        // no fresh-var machinery: reuse an existing value
                        // variable of int type if present, else discard
                        let _ = (&tmp_label, v2);
                        let _ = dst;
                        // store into a value variable of type int if any
                        if let Some((vd, _)) = self
                            .value_vars()
                            .into_iter()
                            .find(|(_, m)| m.psi == GPsi::Top && m.sigma.is_empty())
                        {
                            self.stmts.push(SStmt::AssignVar(vd, read));
                        }
                    }
                } else if let Some((vd, _)) =
                    self.value_vars().into_iter().find(|(_, m)| *m == fields[idx])
                {
                    self.stmts.push(SStmt::AssignVar(vd, read));
                }
            }
            self.stmts.push(SStmt::Goto(l_end.clone()));
            self.stmts.push(SStmt::Label(after));
        }
        self.stmts.push(SStmt::Goto(l_end.clone()));
        // unboxed side
        self.stmts.push(SStmt::Label(l_unboxed));
        if let GPsi::Count(k) = mt.psi {
            for c in 0..k.min(2) {
                let l_c = self.label();
                self.stmts.push(SStmt::IfIntTag(var.clone(), c as i64, l_c.clone()));
                let after = self.label();
                self.stmts.push(SStmt::Goto(after.clone()));
                self.stmts.push(SStmt::Label(l_c));
                if let Some(dst) = ints.first() {
                    self.stmts.push(SStmt::AssignVar(
                        dst.clone(),
                        SExpr::IntVal(Box::new(SExpr::var(&var))),
                    ));
                }
                self.stmts.push(SStmt::Goto(l_end.clone()));
                self.stmts.push(SStmt::Label(after));
            }
        } else if let Some(dst) = ints.first() {
            // an int-like value: Int_val directly (unboxed side)
            self.stmts
                .push(SStmt::AssignVar(dst.clone(), SExpr::IntVal(Box::new(SExpr::var(&var)))));
        }
        self.stmts.push(SStmt::Label(l_end));
    }

    /// C pointer read and write.
    fn frag_cptr(&mut self) {
        let ptrs = self.ptr_vars();
        let ints = self.int_vars();
        let (Some(p), Some(dst)) = (ptrs.first(), ints.first()) else { return };
        self.stmts.push(SStmt::AssignVar(dst.clone(), SExpr::Deref(Box::new(SExpr::var(p)))));
        self.stmts.push(SStmt::AssignMem(
            SExpr::var(p),
            0,
            SExpr::Aop("+", Box::new(SExpr::var(dst)), Box::new(SExpr::cint(1))),
        ));
    }

    /// A bounded counting loop.
    fn frag_loop(&mut self) {
        let ints = self.int_vars();
        let Some(i) = ints.first().cloned() else { return };
        let head = self.label();
        let end = self.label();
        self.stmts.push(SStmt::AssignVar(i.clone(), SExpr::cint(self.rng.gen_range(1..5))));
        self.stmts.push(SStmt::Label(head.clone()));
        self.stmts.push(SStmt::If(
            SExpr::Aop("<=", Box::new(SExpr::var(&i)), Box::new(SExpr::cint(0))),
            end.clone(),
        ));
        self.stmts.push(SStmt::AssignVar(
            i.clone(),
            SExpr::Aop("-", Box::new(SExpr::var(&i)), Box::new(SExpr::cint(1))),
        ));
        self.stmts.push(SStmt::Goto(head));
        self.stmts.push(SStmt::Label(end));
    }

    /// Writes a well-typed immediate into a block field after a tag test.
    fn frag_write(&mut self) {
        let candidates: Vec<(String, GMt)> =
            self.value_vars().into_iter().filter(|(_, mt)| !mt.sigma.is_empty()).collect();
        let Some((var, mt)) = candidates.first().cloned() else { return };
        let tag = self.rng.gen_range(0..mt.sigma.len());
        let fields = &mt.sigma[tag];
        // choose an immediate-typed field
        let Some(idx) = fields.iter().position(|f| matches!(f.psi, GPsi::Top | GPsi::Count(1..)))
        else {
            return;
        };
        let fty = fields[idx].clone();
        let imm = match fty.psi {
            GPsi::Top => self.rng.gen_range(0..50),
            GPsi::Count(k) => self.rng.gen_range(0..k.max(1) as i64),
        };
        let l_unboxed = self.label();
        let l_tag = self.label();
        let l_end = self.label();
        self.stmts.push(SStmt::IfUnboxed(var.clone(), l_unboxed.clone()));
        self.stmts.push(SStmt::IfSumTag(var.clone(), tag as i64, l_tag.clone()));
        self.stmts.push(SStmt::Goto(l_end.clone()));
        self.stmts.push(SStmt::Label(l_tag));
        self.stmts.push(SStmt::AssignMem(
            SExpr::var(&var),
            idx as i64,
            SExpr::ValInt(Box::new(SExpr::cint(imm)), fty),
        ));
        self.stmts.push(SStmt::Goto(l_end.clone()));
        self.stmts.push(SStmt::Label(l_unboxed));
        self.stmts.push(SStmt::Label(l_end));
    }
}

/// Produces a mutant of `program` by one random local corruption. The
/// mutant may or may not still be well-typed; the soundness property only
/// requires that *checker-accepted* mutants never get stuck.
pub fn mutate(program: &Program, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
    let mut stmts = program.stmts.clone();
    if stmts.is_empty() {
        return program.clone();
    }
    let idx = rng.gen_range(0..stmts.len());
    let stmt = stmts[idx].clone();
    stmts[idx] = match stmt {
        SStmt::AssignVar(x, e) => match rng.gen_range(0..3) {
            0 => SStmt::AssignVar(x, bump_offsets(e, &mut rng)),
            1 => SStmt::AssignVar(x, SExpr::IntVal(Box::new(e))),
            _ => SStmt::AssignVar(x, SExpr::Deref(Box::new(e))),
        },
        SStmt::AssignMem(base, n, rhs) => SStmt::AssignMem(base, n + rng.gen_range(1..4), rhs),
        SStmt::IfSumTag(x, n, l) => SStmt::IfSumTag(x, n + rng.gen_range(1..4), l),
        SStmt::IfIntTag(x, n, l) => SStmt::IfIntTag(x, n + rng.gen_range(1..9), l),
        SStmt::IfUnboxed(_, _) => SStmt::Skip, // drop a refinement
        other => other,
    };
    Program::new(stmts)
}

fn bump_offsets(e: SExpr, rng: &mut StdRng) -> SExpr {
    match e {
        SExpr::PtrAdd(a, b) => {
            let bump = rng.gen_range(1..5);
            SExpr::PtrAdd(a, Box::new(SExpr::Aop("+", b, Box::new(SExpr::cint(bump)))))
        }
        SExpr::Deref(inner) => SExpr::Deref(Box::new(bump_offsets(*inner, rng))),
        SExpr::IntVal(inner) => SExpr::IntVal(Box::new(bump_offsets(*inner, rng))),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check, compatible};
    use crate::machine::Machine;

    #[test]
    fn worlds_are_compatible_by_construction() {
        for seed in 0..50 {
            let w = gen_world(seed);
            compatible(&w.gamma, &w.stores).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generated_programs_check_and_run() {
        for seed in 0..100 {
            let w = gen_world(seed);
            let p = gen_program(&w, seed);
            assert!(p.well_formed(), "seed {seed}");
            check(&p, &w.gamma).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let out = Machine::new(&p, w.stores.clone()).run(50_000);
            assert!(!out.is_stuck(), "seed {seed}: {out:?}");
        }
    }

    #[test]
    fn some_mutants_are_rejected() {
        let mut rejected = 0usize;
        let mut total = 0usize;
        for seed in 0..120 {
            let w = gen_world(seed);
            let p = gen_program(&w, seed);
            if p.is_empty() {
                continue;
            }
            let m = mutate(&p, seed);
            if m.stmts == p.stmts {
                continue;
            }
            total += 1;
            if check(&m, &w.gamma).is_err() {
                rejected += 1;
            }
        }
        assert!(total > 30, "mutation produced too few distinct mutants: {total}");
        assert!(rejected > 0, "checker accepted every mutant out of {total}");
    }
}
