//! The type *checking* rules of Figures 13/14 for the restricted language,
//! plus the store-compatibility relation of Definition 4.
//!
//! Unlike the inference engine, everything here is ground: `Γ` assigns
//! concrete types to variables, C locations and heap blocks, and the rules
//! merely validate. Theorem 1 (executable form): if [`check`] accepts a
//! well-formed program under a `Γ` compatible with the initial stores, the
//! machine never gets stuck — tested exhaustively in the soundness suite.

use crate::machine::Stores;
use crate::syntax::{Program, SExpr, SStmt, Value};
use crate::types::{GCt, GMt, GPsi};
use ffisafe_types::{Boxedness, FlatInt, Shape};
use std::collections::HashMap;

/// The ground typing context: variables, C locations and heap blocks.
#[derive(Clone, Debug, Default)]
pub struct Gamma {
    /// Variable types (the flow-insensitive `ct` part).
    pub vars: HashMap<String, GCt>,
    /// C location types (`Γ ⊢ l : ct *`).
    pub clocs: HashMap<u32, GCt>,
    /// Heap block types and static tags
    /// (`Γ ⊢ {l+n} : (Ψ,Σ) value[boxed{n}]{m}`).
    pub blocks: HashMap<u32, (GMt, i64)>,
}

/// A checking failure, with the statement index where it occurred
/// (`usize::MAX` for compatibility failures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError {
    /// Statement index.
    pub at: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "statement {}: {}", self.at, self.message)
    }
}

impl std::error::Error for TypeError {}

fn err<T>(at: usize, message: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError { at, message: message.into() })
}

/// Whether runtime value `v` inhabits ground type `ct` (used by
/// compatibility, Definition 4). Heap pointers must be *safe* (offset 0).
pub fn value_has_type(gamma: &Gamma, v: Value, ct: &GCt) -> bool {
    match (v, ct) {
        (Value::CInt(_), GCt::Int) => true,
        (Value::CLoc(l), GCt::Ptr(inner)) => {
            gamma.clocs.get(&l).is_some_and(|t| t == inner.as_ref())
        }
        (Value::MlInt(n), GCt::Value(mt)) => mt.psi.admits(n),
        (Value::MlLoc { base, off: 0 }, GCt::Value(mt)) => {
            gamma.blocks.get(&base).is_some_and(|(t, _)| t == mt)
        }
        _ => false,
    }
}

/// Definition 4: `Γ ∼ ⟨S_C, S_ML, V⟩`.
pub fn compatible(gamma: &Gamma, stores: &Stores) -> Result<(), TypeError> {
    for (l, v) in &stores.sc {
        let Some(ct) = gamma.clocs.get(l) else {
            return err(usize::MAX, format!("C location {l} missing from Γ"));
        };
        if !value_has_type(gamma, *v, ct) {
            return err(usize::MAX, format!("S_C({l}) = {v:?} is not a `{ct}`"));
        }
    }
    for (base, block) in &stores.sml {
        let Some((mt, tag)) = gamma.blocks.get(base) else {
            return err(usize::MAX, format!("block {base} missing from Γ"));
        };
        if block.tag != *tag {
            return err(usize::MAX, format!("block {base} has tag {} but Γ says {tag}", block.tag));
        }
        let Some(fields) = mt.product(*tag) else {
            return err(usize::MAX, format!("block {base} tag {tag} exceeds Σ"));
        };
        if block.fields.len() < fields.len() {
            return err(usize::MAX, format!("block {base} shorter than its product"));
        }
        for (i, fty) in fields.iter().enumerate() {
            if !value_has_type(gamma, block.fields[i], &GCt::Value(fty.clone())) {
                return err(usize::MAX, format!("block {base} field {i} does not inhabit `{fty}`"));
            }
        }
    }
    for (x, v) in &stores.v {
        let Some(ct) = gamma.vars.get(x) else {
            return err(usize::MAX, format!("variable {x} missing from Γ"));
        };
        if !value_has_type(gamma, *v, ct) {
            return err(usize::MAX, format!("V({x}) = {v:?} is not a `{ct}`"));
        }
    }
    Ok(())
}

/// Checks a program under `gamma`, running the flow-sensitive label
/// fixpoint of Figure 14.
///
/// # Errors
///
/// Returns the first rule violation found.
pub fn check(program: &Program, gamma: &Gamma) -> Result<(), TypeError> {
    let mut checker = Checker { gamma, program, labels: HashMap::new(), env: HashMap::new() };
    // fixpoint on label environments; rule applications are deterministic
    let mut guard = 0usize;
    loop {
        guard += 1;
        let changed = checker.run_pass()?;
        if !changed {
            return Ok(());
        }
        if guard > 4 * program.len() + 8 {
            return err(usize::MAX, "label fixpoint failed to converge");
        }
    }
}

struct Checker<'a> {
    gamma: &'a Gamma,
    program: &'a Program,
    labels: HashMap<String, HashMap<String, Shape>>,
    env: HashMap<String, Shape>,
}

impl<'a> Checker<'a> {
    fn initial_env(&self) -> HashMap<String, Shape> {
        self.gamma.vars.keys().map(|k| (k.clone(), Shape::unknown())).collect()
    }

    fn bottom_env(&self) -> HashMap<String, Shape> {
        self.gamma.vars.keys().map(|k| (k.clone(), Shape::bottom())).collect()
    }

    fn join_label(&mut self, label: &str, env: &HashMap<String, Shape>) -> bool {
        let entry = self.labels.entry(label.to_string()).or_insert_with(|| {
            self.gamma.vars.keys().map(|k| (k.clone(), Shape::bottom())).collect()
        });
        let mut changed = false;
        for (k, s) in env {
            let g = entry.entry(k.clone()).or_insert_with(Shape::bottom);
            let joined = g.join(*s);
            if joined != *g {
                *g = joined;
                changed = true;
            }
        }
        changed
    }

    fn run_pass(&mut self) -> Result<bool, TypeError> {
        self.env = self.initial_env();
        let mut changed = false;
        for (i, stmt) in self.program.stmts.iter().enumerate() {
            changed |= self.check_stmt(i, stmt)?;
        }
        Ok(changed)
    }

    fn shape_of(&self, x: &str) -> Shape {
        self.env.get(x).copied().unwrap_or_else(Shape::bottom)
    }

    fn check_stmt(&mut self, at: usize, stmt: &SStmt) -> Result<bool, TypeError> {
        match stmt {
            SStmt::Skip => Ok(false),
            SStmt::Label(l) => {
                let env = self.env.clone();
                let changed = self.join_label(l, &env);
                self.env = self.labels[l].clone();
                Ok(changed)
            }
            SStmt::Goto(l) => {
                if self.program.label(l).is_none() {
                    return err(at, format!("goto to unknown label `{l}`"));
                }
                let env = self.env.clone();
                let changed = self.join_label(l, &env);
                self.env = self.bottom_env();
                Ok(changed)
            }
            SStmt::AssignVar(x, e) => {
                let (ct, shape) = self.check_expr(at, e)?;
                let Some(want) = self.gamma.vars.get(x) else {
                    return err(at, format!("assignment to undeclared variable `{x}`"));
                };
                if &ct != want {
                    return err(at, format!("assigning `{ct}` to `{x}` of type `{want}`"));
                }
                self.env.insert(x.clone(), shape);
                Ok(false)
            }
            SStmt::AssignMem(base, n, rhs) => {
                // *(e1 +p n) must type as a safe ct; rhs matches and is safe
                let addr = SExpr::PtrAdd(Box::new(base.clone()), Box::new(SExpr::cint(*n)));
                let target = SExpr::Deref(Box::new(addr));
                let (ct, _) = self.check_expr(at, &target)?;
                let (rct, rshape) = self.check_expr(at, rhs)?;
                if rct != ct {
                    return err(at, format!("storing `{rct}` where `{ct}` is required"));
                }
                if !rshape.is_safe() {
                    return err(at, "stored value is not safe (offset unknown or nonzero)");
                }
                Ok(false)
            }
            SStmt::If(e, l) => {
                let (ct, _) = self.check_expr(at, e)?;
                if ct != GCt::Int {
                    return err(at, format!("if-condition has type `{ct}`, expected int"));
                }
                if self.program.label(l).is_none() {
                    return err(at, format!("branch to unknown label `{l}`"));
                }
                let env = self.env.clone();
                Ok(self.join_label(l, &env))
            }
            SStmt::IfUnboxed(x, l) => {
                let mt = self.var_value_type(at, x)?;
                let _ = mt;
                let shape = self.shape_of(x);
                if !shape.is_safe() {
                    return err(at, format!("if unboxed({x}): `{x}` is not safe"));
                }
                if self.program.label(l).is_none() {
                    return err(at, format!("branch to unknown label `{l}`"));
                }
                let mut tenv = self.env.clone();
                tenv.insert(x.clone(), Shape::new(Boxedness::Unboxed, FlatInt::Known(0), shape.t));
                let changed = self.join_label(l, &tenv);
                self.env
                    .insert(x.clone(), Shape::new(Boxedness::Boxed, FlatInt::Known(0), shape.t));
                Ok(changed)
            }
            SStmt::IfSumTag(x, n, l) => {
                let mt = self.var_value_type(at, x)?;
                let shape = self.shape_of(x);
                if shape.b != Boxedness::Boxed && shape.b != Boxedness::Bot {
                    return err(at, format!("if sum_tag({x}): `{x}` is not known to be boxed"));
                }
                if !matches!(shape.i, FlatInt::Known(0) | FlatInt::Bot) {
                    return err(at, format!("if sum_tag({x}): `{x}` is not at offset 0"));
                }
                if mt.product(*n).is_none() {
                    return err(
                        at,
                        format!("if sum_tag({x}) == {n}: type `{mt}` has no such constructor"),
                    );
                }
                if self.program.label(l).is_none() {
                    return err(at, format!("branch to unknown label `{l}`"));
                }
                let mut tenv = self.env.clone();
                tenv.insert(
                    x.clone(),
                    Shape::new(Boxedness::Boxed, FlatInt::Known(0), FlatInt::Known(*n)),
                );
                Ok(self.join_label(l, &tenv))
            }
            SStmt::IfIntTag(x, n, l) => {
                let mt = self.var_value_type(at, x)?;
                let shape = self.shape_of(x);
                if shape.b != Boxedness::Unboxed && shape.b != Boxedness::Bot {
                    return err(at, format!("if int_tag({x}): `{x}` is not known to be unboxed"));
                }
                if !mt.psi.admits(*n) {
                    return err(
                        at,
                        format!(
                            "if int_tag({x}) == {n}: type `{mt}` has too few nullary constructors"
                        ),
                    );
                }
                if self.program.label(l).is_none() {
                    return err(at, format!("branch to unknown label `{l}`"));
                }
                let mut tenv = self.env.clone();
                tenv.insert(
                    x.clone(),
                    Shape::new(Boxedness::Unboxed, FlatInt::Known(0), FlatInt::Known(*n)),
                );
                Ok(self.join_label(l, &tenv))
            }
        }
    }

    fn var_value_type(&self, at: usize, x: &str) -> Result<GMt, TypeError> {
        match self.gamma.vars.get(x) {
            Some(GCt::Value(mt)) => Ok(mt.clone()),
            Some(other) => err(at, format!("`{x}` has type `{other}`, expected a value")),
            None => err(at, format!("unknown variable `{x}`")),
        }
    }

    fn check_expr(&self, at: usize, e: &SExpr) -> Result<(GCt, Shape), TypeError> {
        match e {
            SExpr::Lit(Value::CInt(n), _) => Ok((GCt::Int, Shape::int_const(*n))),
            SExpr::Lit(Value::CLoc(l), _) => match self.gamma.clocs.get(l) {
                Some(ct) => Ok((ct.clone().ptr(), Shape::unknown())),
                None => err(at, format!("literal C location {l} not in Γ")),
            },
            SExpr::Lit(Value::MlInt(n), ann) => {
                let Some(mt) = ann else {
                    return err(at, "OCaml literal without a type annotation");
                };
                if !mt.psi.admits(*n) {
                    return err(at, format!("immediate {{{n}}} is not admitted by `{mt}`"));
                }
                Ok((
                    GCt::Value(mt.clone()),
                    Shape::new(Boxedness::Unboxed, FlatInt::Known(0), FlatInt::Known(*n)),
                ))
            }
            SExpr::Lit(Value::MlLoc { base, off }, _) => {
                let Some((mt, tag)) = self.gamma.blocks.get(base) else {
                    return err(at, format!("literal block {base} not in Γ"));
                };
                let Some(fields) = mt.product(*tag) else {
                    return err(at, format!("block {base} tag {tag} exceeds Σ"));
                };
                if *off < 0 || *off as usize > fields.len().saturating_sub(1) {
                    return err(at, format!("literal {{{base}+{off}}} out of bounds"));
                }
                Ok((
                    GCt::Value(mt.clone()),
                    Shape::new(Boxedness::Boxed, FlatInt::Known(*off), FlatInt::Known(*tag)),
                ))
            }
            SExpr::Var(x) => match self.gamma.vars.get(x) {
                Some(ct) => Ok((ct.clone(), self.shape_of(x))),
                None => err(at, format!("unknown variable `{x}`")),
            },
            SExpr::Deref(inner) => {
                let (ct, shape) = self.check_expr(at, inner)?;
                match ct {
                    GCt::Ptr(inner_ct) => Ok((*inner_ct, Shape::unknown())),
                    GCt::Value(mt) => {
                        if shape.b != Boxedness::Boxed {
                            return err(at, "dereference of a value not known to be boxed");
                        }
                        let (FlatInt::Known(m), FlatInt::Known(n)) = (shape.t, shape.i) else {
                            return err(at, "dereference with unknown tag or offset");
                        };
                        let Some(fields) = mt.product(m) else {
                            return err(at, format!("tag {m} exceeds `{mt}`"));
                        };
                        let Some(field) = usize::try_from(n).ok().and_then(|i| fields.get(i))
                        else {
                            return err(at, format!("field {n} exceeds product of tag {m}"));
                        };
                        Ok((GCt::Value(field.clone()), Shape::unknown()))
                    }
                    GCt::Int => err(at, "dereference of an int"),
                }
            }
            SExpr::Aop(op, a, b) => {
                let (cta, sa) = self.check_expr(at, a)?;
                let (ctb, sb) = self.check_expr(at, b)?;
                if cta != GCt::Int || ctb != GCt::Int {
                    return err(at, "arithmetic on non-integers");
                }
                Ok((GCt::Int, Shape::new(Boxedness::Top, FlatInt::Known(0), sa.t.aop(op, sb.t))))
            }
            SExpr::PtrAdd(a, b) => {
                let (cta, sa) = self.check_expr(at, a)?;
                let (ctb, sb) = self.check_expr(at, b)?;
                if ctb != GCt::Int {
                    return err(at, "pointer offset is not an integer");
                }
                match cta {
                    GCt::Value(mt) => {
                        if sa.b != Boxedness::Boxed {
                            return err(at, "value pointer arithmetic on a non-boxed value");
                        }
                        let (FlatInt::Known(n), FlatInt::Known(m), FlatInt::Known(k)) =
                            (sa.i, sa.t, sb.t)
                        else {
                            return err(at, "pointer arithmetic with unknown components");
                        };
                        let Some(fields) = mt.product(m) else {
                            return err(at, format!("tag {m} exceeds `{mt}`"));
                        };
                        let new_off = n + k;
                        if new_off < 0 || new_off as usize >= fields.len() {
                            return err(at, format!("offset {new_off} exceeds product of tag {m}"));
                        }
                        Ok((
                            GCt::Value(mt),
                            Shape::new(
                                Boxedness::Boxed,
                                FlatInt::Known(new_off),
                                FlatInt::Known(m),
                            ),
                        ))
                    }
                    GCt::Ptr(_) => {
                        if sb.t != FlatInt::Known(0) {
                            return err(at, "C pointer arithmetic must use offset 0");
                        }
                        Ok((cta, Shape::unknown()))
                    }
                    GCt::Int => err(at, "pointer arithmetic on an int"),
                }
            }
            SExpr::ValInt(inner, mt) => {
                let (ct, shape) = self.check_expr(at, inner)?;
                if ct != GCt::Int {
                    return err(at, "Val_int of a non-integer");
                }
                match shape.t {
                    FlatInt::Known(n) if !mt.psi.admits(n) => {
                        return err(at, format!("Val_int({n}) is not admitted by `{mt}`"));
                    }
                    FlatInt::Top if mt.psi != GPsi::Top => {
                        return err(at, "Val_int of unknown integer requires an int-like type");
                    }
                    _ => {}
                }
                Ok((
                    GCt::Value(mt.clone()),
                    Shape::new(Boxedness::Unboxed, FlatInt::Known(0), shape.t),
                ))
            }
            SExpr::IntVal(inner) => {
                let (ct, shape) = self.check_expr(at, inner)?;
                let GCt::Value(mt) = ct else {
                    return err(at, "Int_val of a non-value");
                };
                // A type with no boxed constructors is statically immediate
                // (no compatible store can hold a pointer of that type), so
                // no dynamic unboxedness proof is needed.
                let statically_immediate = mt.sigma.is_empty();
                if !statically_immediate
                    && shape.b != Boxedness::Unboxed
                    && shape.b != Boxedness::Bot
                {
                    return err(at, "Int_val of a value not known to be unboxed");
                }
                Ok((GCt::Int, Shape::new(Boxedness::Top, FlatInt::Known(0), shape.t)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Block;

    /// `Γ` and stores for: `x : t` where
    /// `type t = A of int | B | C of int * int | D`, x = C(3, 4).
    fn world() -> (Gamma, Stores) {
        let t = GMt::sum(2, vec![vec![GMt::int()], vec![GMt::int(), GMt::int()]]);
        let mut gamma = Gamma::default();
        gamma.blocks.insert(0, (t.clone(), 1));
        gamma.vars.insert("x".into(), GCt::Value(t));
        gamma.vars.insert("r".into(), GCt::Int);
        let mut stores = Stores::default();
        stores.sml.insert(0, Block { tag: 1, fields: vec![Value::MlInt(3), Value::MlInt(4)] });
        stores.v.insert("x".into(), Value::MlLoc { base: 0, off: 0 });
        stores.v.insert("r".into(), Value::CInt(0));
        (gamma, stores)
    }

    /// The Figure 8 program: examine `x` with all four constructors.
    fn figure8() -> Program {
        use SExpr as E;
        use SStmt as S;
        Program::new(vec![
            S::IfUnboxed("x".into(), "unboxed".into()),
            // boxed fall-through
            S::IfSumTag("x".into(), 0, "tag_a".into()),
            S::IfSumTag("x".into(), 1, "tag_c".into()),
            S::Goto("end".into()),
            S::Label("tag_a".into()),
            S::AssignVar(
                "r".into(),
                E::IntVal(Box::new(E::Deref(Box::new(E::PtrAdd(
                    Box::new(E::var("x")),
                    Box::new(E::cint(0)),
                ))))),
            ),
            S::Goto("end".into()),
            S::Label("tag_c".into()),
            S::AssignVar(
                "r".into(),
                E::IntVal(Box::new(E::Deref(Box::new(E::PtrAdd(
                    Box::new(E::var("x")),
                    Box::new(E::cint(1)),
                ))))),
            ),
            S::Goto("end".into()),
            S::Label("unboxed".into()),
            S::IfIntTag("x".into(), 0, "b".into()),
            S::IfIntTag("x".into(), 1, "d".into()),
            S::Goto("end".into()),
            S::Label("b".into()),
            S::AssignVar("r".into(), E::cint(100)),
            S::Goto("end".into()),
            S::Label("d".into()),
            S::AssignVar("r".into(), E::cint(200)),
            S::Label("end".into()),
        ])
    }

    #[test]
    fn figure8_program_checks_and_runs() {
        let (gamma, stores) = world();
        let p = figure8();
        assert!(p.well_formed());
        compatible(&gamma, &stores).unwrap();
        check(&p, &gamma).unwrap();
        let out = crate::machine::Machine::new(&p, stores).run(10_000);
        match out {
            crate::machine::Outcome::Finished(s) => {
                // x = C(3,4): tag 1, second field read
                assert_eq!(s.v["r"], Value::CInt(4));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_field_offset_is_rejected_statically() {
        let (gamma, _) = world();
        use SExpr as E;
        use SStmt as S;
        // reads field 2 of constructor C (which has fields 0 and 1)
        let p = Program::new(vec![
            S::IfUnboxed("x".into(), "end".into()),
            S::IfSumTag("x".into(), 1, "c".into()),
            S::Goto("end".into()),
            S::Label("c".into()),
            S::AssignVar(
                "r".into(),
                E::IntVal(Box::new(E::Deref(Box::new(E::PtrAdd(
                    Box::new(E::var("x")),
                    Box::new(E::cint(2)),
                ))))),
            ),
            S::Label("end".into()),
        ]);
        let e = check(&p, &gamma).unwrap_err();
        assert!(e.message.contains("exceeds"), "{e}");
    }

    #[test]
    fn int_val_without_unboxed_test_is_rejected() {
        let (gamma, _) = world();
        use SExpr as E;
        use SStmt as S;
        let p = Program::new(vec![S::AssignVar("r".into(), E::IntVal(Box::new(E::var("x"))))]);
        let e = check(&p, &gamma).unwrap_err();
        assert!(e.message.contains("unboxed"), "{e}");
    }

    #[test]
    fn tag_test_without_boxedness_proof_is_rejected() {
        let (gamma, _) = world();
        let p = Program::new(vec![
            SStmt::IfSumTag("x".into(), 0, "l".into()),
            SStmt::Label("l".into()),
        ]);
        let e = check(&p, &gamma).unwrap_err();
        assert!(e.message.contains("boxed"), "{e}");
    }

    #[test]
    fn int_tag_out_of_range_is_rejected() {
        let (gamma, _) = world();
        let p = Program::new(vec![
            SStmt::IfUnboxed("x".into(), "u".into()),
            SStmt::Goto("end".into()),
            SStmt::Label("u".into()),
            SStmt::IfIntTag("x".into(), 7, "end".into()),
            SStmt::Label("end".into()),
        ]);
        let e = check(&p, &gamma).unwrap_err();
        assert!(e.message.contains("nullary"), "{e}");
    }

    #[test]
    fn compatibility_catches_wrong_store() {
        let (gamma, mut stores) = world();
        stores.v.insert("r".into(), Value::MlInt(0)); // r is an int variable
        assert!(compatible(&gamma, &stores).is_err());
    }

    #[test]
    fn val_int_respects_psi() {
        let (mut gamma, _) = world();
        let two = GMt::enumeration(2);
        gamma.vars.insert("e".into(), GCt::Value(two.clone()));
        use SExpr as E;
        use SStmt as S;
        let ok = Program::new(vec![S::AssignVar(
            "e".into(),
            E::ValInt(Box::new(E::cint(1)), two.clone()),
        )]);
        check(&ok, &gamma).unwrap();
        let bad =
            Program::new(vec![S::AssignVar("e".into(), E::ValInt(Box::new(E::cint(5)), two))]);
        assert!(check(&bad, &gamma).is_err());
    }

    #[test]
    fn loop_checks_via_label_fixpoint() {
        let (gamma, stores) = world();
        use SExpr as E;
        use SStmt as S;
        let mut g = gamma;
        g.vars.insert("i".into(), GCt::Int);
        let mut st = stores;
        st.v.insert("i".into(), Value::CInt(3));
        let p = Program::new(vec![
            S::AssignVar("i".into(), E::cint(3)),
            S::Label("head".into()),
            S::If(E::Aop("==", Box::new(E::var("i")), Box::new(E::cint(0))), "end".into()),
            S::AssignVar("i".into(), E::Aop("-", Box::new(E::var("i")), Box::new(E::cint(1)))),
            S::Goto("head".into()),
            S::Label("end".into()),
        ]);
        check(&p, &g).unwrap();
        let out = crate::machine::Machine::new(&p, st).run(1000);
        assert!(matches!(out, crate::machine::Outcome::Finished(_)), "{out:?}");
    }
}
