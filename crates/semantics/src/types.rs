//! Ground (variable-free) multi-lingual types for the restricted system of
//! the appendix. The checking rules (Figures 13/14) never need inference
//! variables, so types here are plain trees.

use std::fmt;

/// Ground `Ψ`: an exact nullary-constructor count or `⊤` (integers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GPsi {
    /// Exactly `n` nullary constructors.
    Count(u32),
    /// Any integer.
    Top,
}

impl GPsi {
    /// Whether the immediate `n` inhabits this bound (`n + 1 ≤ Ψ`).
    pub fn admits(self, n: i64) -> bool {
        match self {
            GPsi::Top => true,
            GPsi::Count(k) => n >= 0 && (n as u64) < k as u64,
        }
    }
}

/// A ground representational type `(Ψ, Σ)`: `sigma[m]` lists the field
/// types of the product at tag `m`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GMt {
    /// Bound on unboxed values.
    pub psi: GPsi,
    /// One product (field-type list) per non-nullary constructor.
    pub sigma: Vec<Vec<GMt>>,
}

impl GMt {
    /// The type of OCaml `int`: `(⊤, ∅)`.
    pub fn int() -> Self {
        GMt { psi: GPsi::Top, sigma: Vec::new() }
    }

    /// The type of `unit`: `(1, ∅)`.
    pub fn unit() -> Self {
        GMt { psi: GPsi::Count(1), sigma: Vec::new() }
    }

    /// An enumeration with `k` nullary constructors: `(k, ∅)`.
    pub fn enumeration(k: u32) -> Self {
        GMt { psi: GPsi::Count(k), sigma: Vec::new() }
    }

    /// A sum with the given nullary count and products.
    pub fn sum(nullary: u32, products: Vec<Vec<GMt>>) -> Self {
        GMt { psi: GPsi::Count(nullary), sigma: products }
    }

    /// A bare tuple/record: `(0, Π)`.
    pub fn block(fields: Vec<GMt>) -> Self {
        GMt { psi: GPsi::Count(0), sigma: vec![fields] }
    }

    /// Fields of the product at `tag`, if present.
    pub fn product(&self, tag: i64) -> Option<&[GMt]> {
        usize::try_from(tag).ok().and_then(|t| self.sigma.get(t)).map(Vec::as_slice)
    }
}

impl fmt::Display for GMt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.psi {
            GPsi::Count(n) => write!(f, "({n}, ")?,
            GPsi::Top => write!(f, "(⊤, ")?,
        }
        if self.sigma.is_empty() {
            write!(f, "∅)")
        } else {
            let prods: Vec<String> = self
                .sigma
                .iter()
                .map(|p| {
                    if p.is_empty() {
                        "∅".to_string()
                    } else {
                        p.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" × ")
                    }
                })
                .collect();
            write!(f, "{})", prods.join(" + "))
        }
    }
}

/// Ground extended C types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GCt {
    /// A C integer.
    Int,
    /// A C pointer.
    Ptr(Box<GCt>),
    /// An OCaml value of the given representational type.
    Value(GMt),
}

impl GCt {
    /// Convenience: pointer to `self`.
    pub fn ptr(self) -> GCt {
        GCt::Ptr(Box::new(self))
    }

    /// The embedded `mt`, if this is a `value`.
    pub fn as_value(&self) -> Option<&GMt> {
        match self {
            GCt::Value(mt) => Some(mt),
            _ => None,
        }
    }
}

impl fmt::Display for GCt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GCt::Int => write!(f, "int"),
            GCt::Ptr(inner) => write!(f, "{inner} *"),
            GCt::Value(mt) => write!(f, "{mt} value"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_admission() {
        assert!(GPsi::Top.admits(123));
        assert!(GPsi::Count(2).admits(0));
        assert!(GPsi::Count(2).admits(1));
        assert!(!GPsi::Count(2).admits(2));
        assert!(!GPsi::Count(2).admits(-1));
    }

    #[test]
    fn running_example_display() {
        // type t = A of int | B | C of int * int | D
        let t = GMt::sum(2, vec![vec![GMt::int()], vec![GMt::int(), GMt::int()]]);
        assert_eq!(t.to_string(), "(2, (⊤, ∅) + (⊤, ∅) × (⊤, ∅))");
        assert_eq!(t.product(1).unwrap().len(), 2);
        assert!(t.product(2).is_none());
    }

    #[test]
    fn ct_display() {
        assert_eq!(GCt::Int.ptr().to_string(), "int *");
        assert_eq!(GCt::Value(GMt::unit()).to_string(), "(1, ∅) value");
    }
}
