//! Syntax of the restricted language (Figure 10) in executable, linear
//! form.
//!
//! The appendix presents statements as right-nested sequences with a
//! statement store `D` mapping labels to suffixes. An equivalent (and much
//! more convenient) machine representation is a statement *array* with a
//! label → index map: `goto L` sets the program counter to `D(L)`, and
//! sequencing is `pc + 1`. The reduction rules of Figure 12 carry over
//! verbatim.

use crate::types::GMt;
use std::collections::HashMap;

/// Runtime values `v ::= n | l | {n} | {l + n}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Value {
    /// A C integer `n`.
    CInt(i64),
    /// A C location `l`.
    CLoc(u32),
    /// An OCaml immediate `{n}`.
    MlInt(i64),
    /// An OCaml heap pointer `{l + n}`.
    MlLoc {
        /// Block identity.
        base: u32,
        /// Word offset into the block.
        off: i64,
    },
}

/// Expressions of Figure 10. OCaml literals carry the ground type the
/// program intends for them — checking is syntax-directed and the types of
/// `{n}` and `Val_int e` are otherwise ambiguous.
#[derive(Clone, Debug, PartialEq)]
pub enum SExpr {
    /// A literal value; `GMt` annotates OCaml literals.
    Lit(Value, Option<GMt>),
    /// Variable read.
    Var(String),
    /// `*e`.
    Deref(Box<SExpr>),
    /// `e₁ aop e₂` on C integers.
    Aop(&'static str, Box<SExpr>, Box<SExpr>),
    /// `e₁ +p e₂`.
    PtrAdd(Box<SExpr>, Box<SExpr>),
    /// `Val_int e`, annotated with the intended representational type.
    ValInt(Box<SExpr>, GMt),
    /// `Int_val e`.
    IntVal(Box<SExpr>),
}

impl SExpr {
    /// Convenience C-integer literal.
    pub fn cint(n: i64) -> SExpr {
        SExpr::Lit(Value::CInt(n), None)
    }

    /// Convenience variable reference.
    pub fn var(name: &str) -> SExpr {
        SExpr::Var(name.to_string())
    }
}

/// Statements of Figure 10, linearized.
#[derive(Clone, Debug, PartialEq)]
pub enum SStmt {
    /// `L:` — a label definition (the `D` entries of the appendix).
    Label(String),
    /// `goto L`.
    Goto(String),
    /// `x := e`.
    AssignVar(String, SExpr),
    /// `*(e +p n) := e`.
    AssignMem(SExpr, i64, SExpr),
    /// `if e then L`.
    If(SExpr, String),
    /// `if unboxed(x) then L`.
    IfUnboxed(String, String),
    /// `if sum_tag(x) == n then L`.
    IfSumTag(String, i64, String),
    /// `if int_tag(x) == n then L`.
    IfIntTag(String, i64, String),
    /// `()` — the empty statement.
    Skip,
}

/// A program: a linear statement sequence plus its label map `D`.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Statements in order; execution starts at index 0 and finishes by
    /// running past the end.
    pub stmts: Vec<SStmt>,
    labels: HashMap<String, usize>,
}

impl Program {
    /// Builds a program, computing `D`. Duplicate labels keep the first
    /// occurrence (the appendix requires well-formed `D`; see
    /// [`Program::well_formed`]).
    pub fn new(stmts: Vec<SStmt>) -> Self {
        let mut labels = HashMap::new();
        for (i, s) in stmts.iter().enumerate() {
            if let SStmt::Label(l) = s {
                labels.entry(l.clone()).or_insert(i);
            }
        }
        Program { stmts, labels }
    }

    /// `D(L)`: the index of label `L`.
    pub fn label(&self, l: &str) -> Option<usize> {
        self.labels.get(l).copied()
    }

    /// Definition 3: every label referenced by a `goto` or conditional
    /// exists and names a label statement, and no label is defined twice.
    pub fn well_formed(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        for s in &self.stmts {
            if let SStmt::Label(l) = s {
                if !seen.insert(l.clone()) {
                    return false;
                }
            }
        }
        self.stmts.iter().all(|s| match s {
            SStmt::Goto(l)
            | SStmt::If(_, l)
            | SStmt::IfUnboxed(_, l)
            | SStmt::IfSumTag(_, _, l)
            | SStmt::IfIntTag(_, _, l) => self.labels.contains_key(l),
            _ => true,
        })
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_map_to_indices() {
        let p = Program::new(vec![SStmt::Skip, SStmt::Label("a".into()), SStmt::Goto("a".into())]);
        assert_eq!(p.label("a"), Some(1));
        assert!(p.well_formed());
    }

    #[test]
    fn dangling_goto_is_ill_formed() {
        let p = Program::new(vec![SStmt::Goto("missing".into())]);
        assert!(!p.well_formed());
    }

    #[test]
    fn duplicate_label_is_ill_formed() {
        let p = Program::new(vec![SStmt::Label("a".into()), SStmt::Label("a".into())]);
        assert!(!p.well_formed());
    }
}
