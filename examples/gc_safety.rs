//! GC safety: the paper's effect analysis in action (§2, (App)).
//!
//! A C function holding a pointer into the OCaml heap must register it
//! with `CAMLparam`/`CAMLlocal` before *anything* that may trigger a
//! collection runs — including indirectly, through a helper. The effect
//! analysis solves `GC ⊑ GC′` constraints by graph reachability, so the
//! requirement propagates up the call graph.
//!
//! ```text
//! cargo run --example gc_safety
//! ```

use ffisafe::{AnalysisOptions, AnalysisRequest, AnalysisService, Corpus, DiagnosticCode};

const ML: &str = r#"
external remember : string -> unit = "ml_remember"
"#;

/// `ml_remember` never calls the runtime directly — the allocation hides
/// two levels down, inside `build_cell` → `caml_alloc`.
const C: &str = r#"
static value make_block(value v) {
    value cell = caml_alloc(1, 0);
    Store_field(cell, 0, v);
    return cell;
}

static value build_cell(value v) {
    return make_block(v);
}

value ml_remember(value s) {
    value c = build_cell(s);   /* s is live across an allocating call! */
    register_cell(c, s);
    return Val_unit;
}
"#;

const FIXED_C: &str = r#"
static value make_block(value v) {
    CAMLparam1(v);
    CAMLlocal1(cell);
    cell = caml_alloc(1, 0);
    Store_field(cell, 0, v);
    CAMLreturn(cell);
}

static value build_cell(value v) {
    CAMLparam1(v);
    CAMLreturn(make_block(v));
}

value ml_remember(value s) {
    CAMLparam1(s);
    CAMLlocal1(c);
    c = build_cell(s);
    register_cell(c, s);
    CAMLreturn(Val_unit);
}
"#;

fn run(label: &str, c_src: &str) -> usize {
    let corpus = Corpus::builder().ml_source("lib.ml", ML).c_source("glue.c", c_src).build();
    let report =
        AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).expect("in-memory corpus");
    println!("--- {label} ---");
    print!("{}", report.render());
    println!();
    report.diagnostics.with_code(DiagnosticCode::UnrootedValue).count()
}

fn main() {
    let buggy = run("unregistered (buggy)", C);
    assert!(buggy >= 1, "the indirect GC call must be detected");

    let fixed = run("registered (fixed)", FIXED_C);
    assert_eq!(fixed, 0, "registration silences the GC error");

    // Ablation: without effect tracking the bug is invisible.
    let corpus = Corpus::builder().ml_source("lib.ml", ML).c_source("glue.c", C).build();
    let request = AnalysisRequest::new(corpus).options(AnalysisOptions {
        flow_sensitive: true,
        gc_effects: false,
        ..AnalysisOptions::default()
    });
    let report = AnalysisService::new().analyze(&request).expect("in-memory corpus");
    let missed = report.diagnostics.with_code(DiagnosticCode::UnrootedValue).count();
    println!("--- with GC effects disabled (ablation) ---");
    println!("unrooted-value reports: {missed} (the bug goes unnoticed)");
    assert_eq!(missed, 0);
}
