(* gadgets — array walk with a statically-unknown offset (imprecision) *)
external sum : int array -> int -> int = "ml_gadgets_sum"
