/* gadgets glue — the loop index into Field(arr, i) is unknown
 * statically, so the analysis reports imprecision here. */

value ml_gadgets_sum(value arr, value n) {
    int total = 0;
    int i;
    for (i = 0; i < Int_val(n); i++) {
        total += Int_val(Field(arr, i));
    }
    return Val_int(total);
}
