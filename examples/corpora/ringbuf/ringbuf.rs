//! ringbuf — clean Rust/C pair: no findings expected.

#[repr(C)]
pub struct RingBuf {
    head: u32,
    tail: u32,
    cap: u32,
    data: *mut u8,
}

extern "C" {
    fn rb_push(rb: *mut RingBuf, byte: u8) -> i32;
    fn rb_pop(rb: *mut RingBuf) -> i32;
    fn rb_len(rb: *const RingBuf) -> u32;
}
