/* ringbuf glue — every signature matches the Rust declarations */

typedef struct ringbuf ringbuf_t;

int rb_push(ringbuf_t *rb, char byte) {
    return 0;
}

int rb_pop(ringbuf_t *rb) {
    return -1;
}

unsigned rb_len(ringbuf_t *rb) {
    return 0;
}
