/* strutil glue — ml_strutil_length_twice re-wraps an already-wrapped
 * value (Val_int where Int_val belongs): a type error the analysis
 * must report. ml_strutil_measure is correct. */

value ml_strutil_length_twice(value n) {
    return Val_int(n);
}

value ml_strutil_measure(value s) {
    const char *p = String_val(s);
    int n = strutil_measure_impl(p);
    return Val_int(n);
}
