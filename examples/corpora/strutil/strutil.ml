(* strutil — seeded with a Val_int/Int_val confusion (one error) *)
external length_twice : int -> int = "ml_strutil_length_twice"
external measure : string -> int = "ml_strutil_measure"
