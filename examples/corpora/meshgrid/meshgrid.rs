//! meshgrid — seeded layout bug: `Grid` crosses the `extern "C"`
//! boundary but has no `#[repr(C)]` attribute (E013).

pub struct Grid {
    nx: i32,
    ny: i32,
    cells: *mut f64,
}

extern "C" {
    fn grid_init(pool: *mut Grid, nx: i32, ny: i32) -> *mut Grid;
    fn grid_sum(g: *const Grid) -> f64;
}
