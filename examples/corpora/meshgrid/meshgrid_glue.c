/* meshgrid glue — signatures agree; the defect is on the Rust side,
 * where struct Grid lacks #[repr(C)] */

typedef struct grid grid_t;

grid_t *grid_init(grid_t *pool, int nx, int ny) {
    return pool;
}

double grid_sum(grid_t *g) {
    return 0.0;
}
