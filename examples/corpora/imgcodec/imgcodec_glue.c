/* imgcodec glue — img_decode takes two parameters, not the three the
 * Rust import declares */

int img_decode(char *data, long len) {
    return 0;
}

int img_free(int handle) {
    return 0;
}
