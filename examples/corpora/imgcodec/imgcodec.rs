//! imgcodec — seeded arity bug: `img_decode` declares three parameters
//! on the Rust side but the C definition takes two (E011).

extern "C" {
    fn img_decode(data: *const u8, len: usize, flags: i32) -> i32;
    fn img_free(handle: i32) -> i32;
}
