(* intcalc — clean integer glue: no findings expected *)
external add : int -> int -> int = "ml_intcalc_add"
external scale : int -> int -> int = "ml_intcalc_scale"
