/* intcalc glue — correct conversions on every path */

value ml_intcalc_add(value a, value b) {
    long x = Int_val(a);
    long y = Int_val(b);
    return Val_int(x + y);
}

value ml_intcalc_scale(value n, value k) {
    long r = Int_val(n) * Int_val(k);
    return Val_int(r);
}
