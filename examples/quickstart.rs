//! Quickstart: analyze a small OCaml+C pair and print the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ffisafe::{AnalysisRequest, AnalysisService, Corpus};

fn main() {
    let corpus = Corpus::builder()
        .ml_source(
            "counter.ml",
            r#"
(* A tiny binding: a counter stored in an OCaml ref cell. *)
external make  : int -> int ref   = "ml_counter_make"
external bump  : int ref -> int   = "ml_counter_bump"
external broken : int -> int      = "ml_counter_broken"
"#,
        )
        .c_source(
            "counter.c",
            r#"
/* Correct: registers its argument before allocating. */
value ml_counter_make(value n) {
    CAMLparam1(n);
    CAMLlocal1(cell);
    cell = caml_alloc(1, 0);
    Store_field(cell, 0, n);
    CAMLreturn(cell);
}

/* Correct: reads and writes the cell. */
value ml_counter_bump(value cell) {
    long v = Int_val(Field(cell, 0));
    Store_field(cell, 0, Val_int(v + 1));
    return Val_int(v);
}

/* BUG: Val_int applied to something that is already a value. */
value ml_counter_broken(value n) {
    return Val_int(n);
}
"#,
        )
        .build();

    let service = AnalysisService::new();
    let report = service.analyze(&AnalysisRequest::new(corpus)).expect("in-memory corpus");
    print!("{}", report.render());

    println!();
    println!(
        "analyzed {} externals / {} C functions in {:.3}s — {} error(s) found",
        report.stats.externals,
        report.stats.c_functions,
        report.stats.seconds,
        report.error_count()
    );
    assert_eq!(report.error_count(), 1, "exactly the seeded bug is found");
}
