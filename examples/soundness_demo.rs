//! Soundness in action (§4 / appendix): run the executable small-step
//! semantics on a well-typed program and on an ill-typed one.
//!
//! Theorem 1 says well-typed statements never get *stuck*. The checker of
//! Figures 13/14 accepts the first program, which then runs to completion;
//! the second program reads field 7 of a 2-field block — the checker
//! rejects it statically, and running it anyway shows exactly the stuck
//! state the theorem rules out.
//!
//! ```text
//! cargo run --example soundness_demo
//! ```

use ffisafe_semantics::check::{check, compatible, Gamma};
use ffisafe_semantics::machine::{Block, Machine, Stores};
use ffisafe_semantics::syntax::{Program, SExpr, SStmt, Value};
use ffisafe_semantics::types::{GCt, GMt};

fn world() -> (Gamma, Stores) {
    // x : t where type t = A of int | B | C of int * int | D, x = C(3, 4)
    let t = GMt::sum(2, vec![vec![GMt::int()], vec![GMt::int(), GMt::int()]]);
    let mut gamma = Gamma::default();
    gamma.blocks.insert(0, (t.clone(), 1));
    gamma.vars.insert("x".into(), GCt::Value(t));
    gamma.vars.insert("r".into(), GCt::Int);
    let mut stores = Stores::default();
    stores.sml.insert(0, Block { tag: 1, fields: vec![Value::MlInt(3), Value::MlInt(4)] });
    stores.v.insert("x".into(), Value::MlLoc { base: 0, off: 0 });
    stores.v.insert("r".into(), Value::CInt(0));
    (gamma, stores)
}

fn field_read(var: &str, idx: i64) -> SExpr {
    SExpr::IntVal(Box::new(SExpr::Deref(Box::new(SExpr::PtrAdd(
        Box::new(SExpr::var(var)),
        Box::new(SExpr::cint(idx)),
    )))))
}

fn examine(bad_field: Option<i64>) -> Program {
    use SStmt as S;
    let read_idx = bad_field.unwrap_or(1);
    Program::new(vec![
        S::IfUnboxed("x".into(), "imm".into()),
        S::IfSumTag("x".into(), 1, "c".into()),
        S::Goto("end".into()),
        S::Label("c".into()),
        S::AssignVar("r".into(), field_read("x", read_idx)),
        S::Goto("end".into()),
        S::Label("imm".into()),
        S::AssignVar("r".into(), SExpr::IntVal(Box::new(SExpr::var("x")))),
        S::Label("end".into()),
    ])
}

fn main() {
    let (gamma, stores) = world();
    compatible(&gamma, &stores).expect("stores inhabit Γ");

    // --- the well-typed program -----------------------------------------
    let good = examine(None);
    check(&good, &gamma).expect("checker accepts the Figure 8 idiom");
    let outcome = Machine::new(&good, stores.clone()).run(10_000);
    println!("well-typed program: {outcome:?}");
    assert!(!outcome.is_stuck());

    // --- the ill-typed program -------------------------------------------
    let bad = examine(Some(7)); // reads field 7 of a 2-field constructor
    match check(&bad, &gamma) {
        Err(e) => println!("\nchecker rejects the broken program:\n  {e}"),
        Ok(()) => panic!("the checker must reject the out-of-bounds read"),
    }
    // running the rejected program shows the stuck state Theorem 1 avoids
    let outcome = Machine::new(&bad, stores).run(10_000);
    println!("running it anyway: {outcome:?}");
    assert!(outcome.is_stuck(), "the ill-typed program gets stuck at runtime");

    println!("\nTheorem 1 (executable form): accepted ⇒ never stuck.");
    println!("The property-based suite in crates/semantics/tests/soundness.rs");
    println!("validates this over thousands of random worlds and mutants.");
}
