//! Bug hunt: run the full Figure 9 corpus (the paper's 11 benchmarks,
//! synthesized with ground truth) and print the comparison table.
//!
//! ```text
//! cargo run --release --example bug_hunt
//! ```

use ffisafe::AnalysisOptions;
use ffisafe_bench::figure9::{render_table, run_all};

fn main() {
    println!("Reproducing Figure 9 over the synthesized corpus…\n");
    let rows = run_all(AnalysisOptions::default());
    println!("{}", render_table(&rows));

    let mut clean = true;
    for row in &rows {
        for u in &row.unexpected {
            clean = false;
            println!("UNEXPECTED [{}]: {u}", row.name);
        }
        for m in &row.missed {
            clean = false;
            println!("MISSED [{}]: {m}", row.name);
        }
    }
    if clean {
        println!("every seeded defect was found; no diagnostics on clean code");
    }

    let errors: usize = rows.iter().map(|r| r.errors).sum();
    let warnings: usize = rows.iter().map(|r| r.warnings).sum();
    let fps: usize = rows.iter().map(|r| r.false_pos).sum();
    let imps: usize = rows.iter().map(|r| r.imprecision).sum();
    assert_eq!((errors, warnings, fps, imps), (24, 22, 214, 75), "Figure 9 totals");
}
