//! The paper's running example (Figures 2 and 8): examining a value of
//! `type t = A of int | B | C of int * int | D` from C.
//!
//! Demonstrates representational types: `t` has two *unboxed* constructors
//! (B and D, represented as the integers 0 and 1) and two *boxed* ones
//! (A with tag 0, C with tag 1) — so correct C code must first test
//! boxedness with `Is_long`, then dispatch on `Int_val`/`Tag_val`.
//!
//! ```text
//! cargo run --example sum_type_tags
//! ```

use ffisafe::{AnalysisRequest, AnalysisService, Corpus, DiagnosticCode};
use ffisafe_ocaml::{parser, translate, TypeRepository};
use ffisafe_support::SourceMap;
use ffisafe_types::TypeTable;

const ML: &str = r#"
type t = A of int | B | C of int * int | D
external examine : t -> int = "ml_examine"
"#;

const GOOD_C: &str = r#"
value ml_examine(value x) {
    if (Is_long(x)) {
        switch (Int_val(x)) {
        case 0: return Val_int(10); /* B */
        case 1: return Val_int(11); /* D */
        }
    } else {
        switch (Tag_val(x)) {
        case 0: return Field(x, 0);                      /* A of int */
        case 1: return Val_int(Int_val(Field(x, 0))
                             + Int_val(Field(x, 1)));    /* C of int * int */
        }
    }
    return Val_int(0);
}
"#;

const BAD_C: &str = r#"
value ml_examine(value x) {
    /* BUG: tests tag 2, but t has only constructors A (0) and C (1) */
    if (Tag_val(x) == 2) {
        return Field(x, 0);
    }
    return Val_int(0);
}
"#;

fn main() {
    // 1. Show the representational type the translation produces.
    let mut sm = SourceMap::new();
    let file = sm.add_file("t.ml", ML);
    let parsed = parser::parse(file, ML);
    let mut repo = TypeRepository::new();
    repo.register_file(&parsed);
    let externals: Vec<_> = parsed
        .items
        .iter()
        .filter_map(|i| match i {
            ffisafe_ocaml::Item::External(e) => Some(e.clone()),
            _ => None,
        })
        .collect();
    let mut table = TypeTable::new();
    let phase1 = translate::translate_program(&repo, &externals, &mut table);
    let sig = phase1.signature_for_c("ml_examine").unwrap();
    println!("type t = A of int | B | C of int * int | D");
    println!("ρ(t)  = {}", table.render_mt(sig.params[0]));
    println!("        (2 nullary constructors; products for A and C)\n");

    // 2. The Figure 2 code type-checks.
    let service = AnalysisService::new();
    let good = Corpus::builder().ml_source("t.ml", ML).c_source("good.c", GOOD_C).build();
    let report = service.analyze(&AnalysisRequest::new(good)).expect("in-memory corpus");
    println!("Figure 2 idiom: {} error(s)", report.error_count());
    assert_eq!(report.error_count(), 0, "{}", report.render());

    // 3. Testing a nonexistent tag is caught.
    let bad = Corpus::builder().ml_source("t.ml", ML).c_source("bad.c", BAD_C).build();
    let report = service.analyze(&AnalysisRequest::new(bad)).expect("in-memory corpus");
    println!("\nbroken variant:");
    print!("{}", report.render());
    assert!(report.diagnostics.with_code(DiagnosticCode::TagRange).count() > 0);
}
