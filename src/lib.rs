//! # ffisafe — checking type safety of foreign function calls
//!
//! A production-quality Rust implementation of Furr & Foster, *Checking
//! Type Safety of Foreign Function Calls* (PLDI 2005): a multi-lingual
//! type inference system that prevents OCaml→C foreign function calls from
//! introducing type and memory-safety violations.
//!
//! ## What it checks
//!
//! C "glue" code manipulates OCaml data through macros (`Val_int`,
//! `Int_val`, `Field`, `Tag_val`, …) with no compiler checking. This
//! library infers multi-lingual types for that code and reports:
//!
//! * **type errors** — `Val_int`/`Int_val` confusion, wrong constructors,
//!   out-of-range tags and fields, arity mismatches with the OCaml
//!   `external` declaration;
//! * **GC errors** — heap pointers live across an allocating call without
//!   `CAMLparam`/`CAMLlocal` registration, `CAMLparam` without
//!   `CAMLreturn`;
//! * **questionable practice** — trailing `unit` parameters, polymorphic
//!   `'a` arguments pinned to one concrete type by the C code;
//! * **imprecision** — places the flow-sensitive analysis loses track
//!   (unknown offsets, `value` globals, function pointers).
//!
//! A corpus may also contain Rust sources: `extern "C"` blocks,
//! `#[no_mangle]` exports and `#[repr(C)]` type declarations are checked
//! for *layout* agreement against the same C definitions (arity and type
//! compatibility, missing `repr(C)`, FFI-unsafe payloads, nullability) —
//! see the [`core::Frontend`] trait for how the three language frontends
//! plug into one pipeline.
//!
//! ## Quickstart
//!
//! Build an immutable, content-addressed [`Corpus`] and submit it to an
//! [`AnalysisService`] — a long-lived engine that can hold one shared
//! incremental cache and run many corpora concurrently:
//!
//! ```
//! use ffisafe::{AnalysisRequest, AnalysisService, Corpus};
//!
//! let corpus = Corpus::builder()
//!     .ml_source("stack.ml", r#"
//!         type t = Empty | Node of int * t
//!         external depth : t -> int = "ml_depth"
//!     "#)
//!     .c_source("stack.c", r#"
//!         value ml_depth(value v) {
//!             int n = 0;
//!             while (Is_block(v)) {
//!                 n = n + 1;
//!                 v = Field(v, 1);
//!             }
//!             return Val_int(n);
//!         }
//!     "#)
//!     .build();
//!
//! let service = AnalysisService::new();
//! let report = service.analyze(&AnalysisRequest::new(corpus)).unwrap();
//! assert_eq!(report.error_count(), 0, "{}", report.render());
//!
//! // The versioned machine-readable form (schema_version 1):
//! let json = report.to_json();
//! assert!(json.contains("\"schema_version\": 1"));
//! ```
//!
//! Batches share the service's worker pool and cache store, and results
//! come back in submission order at any width:
//!
//! ```
//! use ffisafe::{AnalysisRequest, AnalysisService, Corpus};
//!
//! let service = AnalysisService::new();
//! let requests: Vec<AnalysisRequest> = (0..3)
//!     .map(|i| {
//!         let corpus = Corpus::builder()
//!             .ml_source("lib.ml", format!(r#"external f{i} : int -> int = "ml_f{i}""#))
//!             .c_source(
//!                 "glue.c",
//!                 format!("value ml_f{i}(value n) {{ return Val_int(Int_val(n) + {i}); }}"),
//!             )
//!             .build();
//!         AnalysisRequest::new(corpus)
//!     })
//!     .collect();
//! for result in service.analyze_batch(&requests) {
//!     assert_eq!(result.unwrap().error_count(), 0);
//! }
//! ```
//!
//! ## Migrating from the deprecated [`Analyzer`]
//!
//! The original mutable one-shot [`Analyzer`] still works (it now
//! delegates to a single-corpus service and produces byte-identical
//! reports), but new code should use the service API:
//!
//! | Deprecated `Analyzer` call | Service API equivalent |
//! |----------------------------|------------------------|
//! | `Analyzer::new()` | `AnalysisService::new()` + `Corpus::builder()` |
//! | `Analyzer::with_options(opts)` | `AnalysisRequest::new(corpus).options(opts)` |
//! | `az.add_ml_source(name, src)` | `builder.ml_source(name, src)` |
//! | `az.add_c_source(name, src)` | `builder.c_source(name, src)` |
//! | `az.set_cache_dir(Some(dir))` | `AnalysisService::with_cache_dir(dir)?` |
//! | `az.set_cache_dir(None)` on one run | `request.cache_mode(CacheMode::Bypass)` |
//! | `az.analyze()` | `service.analyze(&request)?` |
//! | (N analyzers in a loop) | `service.analyze_batch(&requests)` |
//!
//! Error handling changes shape too: the facade silently degraded on an
//! unopenable cache directory, while the service reports a typed
//! [`ApiError`] (`Io`, `UnknownFileKind`, `Cache`).
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`ffisafe_support`] | spans, diagnostics, interning, JSON |
//! | [`ffisafe_cache`] | content-addressed two-tier incremental store |
//! | [`ffisafe_types`] | the multi-lingual type language + unification |
//! | [`ffisafe_ocaml`] | OCaml frontend, type repository, `ρ`/`Φ` |
//! | [`ffisafe_cil`] | C frontend, Figure 5 IR, liveness |
//! | [`ffisafe_rustffi`] | Rust `extern "C"` boundary surface + layout check |
//! | [`ffisafe_core`] | the inference engine and [`AnalysisService`] |
//! | [`ffisafe_shard`] | map/reduce sharded sweeps over library trees |
//! | [`ffisafe_semantics`] | executable semantics + soundness harness |
//! | [`ffisafe_serve`] | resident analysis daemon + client (`ffisafe serve`) |
//! | [`ffisafe_bench`] | Figure 9 corpus and measurement harness |

#![warn(missing_docs)]

pub use ffisafe_bench as bench;
pub use ffisafe_cache as cache;
pub use ffisafe_cil as cil;
pub use ffisafe_core as core;
pub use ffisafe_ocaml as ocaml;
pub use ffisafe_rustffi as rustffi;
pub use ffisafe_semantics as semantics;
pub use ffisafe_serve as serve;
pub use ffisafe_support as support;
pub use ffisafe_types as types;

pub use ffisafe_cache::{
    CacheBackend, CacheLocation, CacheServer, RemoteBackend, WIRE_PROTOCOL_VERSION,
};
#[allow(deprecated)]
pub use ffisafe_core::Analyzer;
pub use ffisafe_core::{
    AnalysisOptions, AnalysisReport, AnalysisRequest, AnalysisService, AnalysisStats, ApiError,
    CacheMode, Corpus, CorpusBuilder, CorpusFile, ReportSummary, ServiceConfig, SourceKind,
    REPORT_SCHEMA_VERSION,
};
pub use ffisafe_serve::{AnalysisServer, ServeClient, ServeConfig, SERVE_PROTOCOL_VERSION};
pub use ffisafe_shard as shard;
pub use ffisafe_shard::{
    MapMode, Schedule, SweepConfig, SweepOutput, SweepReport, MANIFEST_SCHEMA_VERSION,
    SWEEP_SCHEMA_VERSION,
};
pub use ffisafe_support::{Diagnostic, DiagnosticCode, Phase, PhaseTimings, Session, Severity};
