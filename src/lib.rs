//! # ffisafe — checking type safety of foreign function calls
//!
//! A production-quality Rust implementation of Furr & Foster, *Checking
//! Type Safety of Foreign Function Calls* (PLDI 2005): a multi-lingual
//! type inference system that prevents OCaml→C foreign function calls from
//! introducing type and memory-safety violations.
//!
//! ## What it checks
//!
//! C "glue" code manipulates OCaml data through macros (`Val_int`,
//! `Int_val`, `Field`, `Tag_val`, …) with no compiler checking. This
//! library infers multi-lingual types for that code and reports:
//!
//! * **type errors** — `Val_int`/`Int_val` confusion, wrong constructors,
//!   out-of-range tags and fields, arity mismatches with the OCaml
//!   `external` declaration;
//! * **GC errors** — heap pointers live across an allocating call without
//!   `CAMLparam`/`CAMLlocal` registration, `CAMLparam` without
//!   `CAMLreturn`;
//! * **questionable practice** — trailing `unit` parameters, polymorphic
//!   `'a` arguments pinned to one concrete type by the C code;
//! * **imprecision** — places the flow-sensitive analysis loses track
//!   (unknown offsets, `value` globals, function pointers).
//!
//! ## Quickstart
//!
//! ```
//! use ffisafe::Analyzer;
//!
//! let mut az = Analyzer::new();
//! az.add_ml_source("stack.ml", r#"
//!     type t = Empty | Node of int * t
//!     external depth : t -> int = "ml_depth"
//! "#);
//! az.add_c_source("stack.c", r#"
//!     value ml_depth(value v) {
//!         int n = 0;
//!         while (Is_block(v)) {
//!             n = n + 1;
//!             v = Field(v, 1);
//!         }
//!         return Val_int(n);
//!     }
//! "#);
//! let report = az.analyze();
//! assert_eq!(report.error_count(), 0, "{}", report.render());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`ffisafe_support`] | spans, diagnostics, interning |
//! | [`ffisafe_types`] | the multi-lingual type language + unification |
//! | [`ffisafe_ocaml`] | OCaml frontend, type repository, `ρ`/`Φ` |
//! | [`ffisafe_cil`] | C frontend, Figure 5 IR, liveness |
//! | [`ffisafe_core`] | the inference engine and [`Analyzer`] |
//! | [`ffisafe_semantics`] | executable semantics + soundness harness |
//! | [`ffisafe_bench`] | Figure 9 corpus and measurement harness |

#![warn(missing_docs)]

pub use ffisafe_bench as bench;
pub use ffisafe_cil as cil;
pub use ffisafe_core as core;
pub use ffisafe_ocaml as ocaml;
pub use ffisafe_semantics as semantics;
pub use ffisafe_support as support;
pub use ffisafe_types as types;

pub use ffisafe_core::{AnalysisOptions, AnalysisReport, AnalysisStats, Analyzer};
pub use ffisafe_support::{Diagnostic, DiagnosticCode, Phase, PhaseTimings, Session, Severity};
