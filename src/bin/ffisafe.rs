//! The `ffisafe` command-line tool: analyze OCaml + C glue sources.
//!
//! ```text
//! ffisafe [--no-flow] [--no-gc] [--jobs N] [--cache-dir DIR] [--no-cache]
//!         [--timings] <file.ml|file.c>...
//! ```
//!
//! Exit status is 1 when errors are found, 2 on usage or I/O problems,
//! 0 otherwise.

use ffisafe::{AnalysisOptions, Analyzer};
use std::process::ExitCode;

const USAGE: &str = "usage: ffisafe [options] <file.ml|file.c>...

Checks type and GC safety of OCaml-to-C foreign function calls
(Furr & Foster, PLDI 2005).

options:
  --no-flow     disable the flow-sensitive dataflow analysis
  --no-gc       disable GC effect tracking and registration checks
  --jobs N, -j N
                inference worker threads (default: all cores)
  --cache-dir DIR
                two-tier incremental-reanalysis cache: unchanged corpora
                replay their report, unchanged functions skip inference
  --no-cache    ignore --cache-dir (force a cold run)
  --timings     print per-phase wall-clock/work timings and cache
                hit/miss counts to stderr
  --version     print version and exit
  --help, -h    print this help";

fn main() -> ExitCode {
    let mut options = AnalysisOptions::default();
    let mut timings = false;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut no_cache = false;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-flow" => options.flow_sensitive = false,
            "--no-gc" => options.gc_effects = false,
            "--timings" => timings = true,
            "--no-cache" => no_cache = true,
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("ffisafe: --cache-dir requires a directory");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                };
                cache_dir = Some(std::path::PathBuf::from(dir));
            }
            "--jobs" | "-j" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("ffisafe: --jobs requires a positive integer");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    eprintln!("ffisafe: --jobs requires a positive integer");
                    return ExitCode::from(2);
                }
                options.jobs = n;
            }
            "--version" | "-V" => {
                println!("ffisafe {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') && other.len() > 1 => {
                eprintln!("ffisafe: unknown option `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("ffisafe: no input files (try --help)");
        return ExitCode::from(2);
    }
    let mut az = Analyzer::with_options(options);
    if !no_cache {
        az.set_cache_dir(cache_dir);
    }
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ffisafe: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if path.ends_with(".ml") || path.ends_with(".mli") {
            az.add_ml_source(path, &src);
        } else if path.ends_with(".c") || path.ends_with(".h") {
            az.add_c_source(path, &src);
        } else {
            eprintln!("ffisafe: skipping {path}: unknown extension");
        }
    }
    let report = az.analyze();
    print!("{}", report.render());
    if timings {
        eprintln!("{:>12}  {:>8}  {:>8}", "phase", "wall", "work");
        for (phase, t) in report.timings.iter() {
            let work = report.timings.get_work(phase);
            eprintln!("{phase:>12}: {:>7.3}s {:>7.3}s", t.as_secs_f64(), work.as_secs_f64());
        }
        eprintln!("{:>12}: {}", "jobs", report.stats.jobs);
        if report.stats.cache_report_hit {
            eprintln!("{:>12}: report tier hit (analysis skipped)", "cache");
        } else {
            eprintln!(
                "{:>12}: {} function hit(s), {} miss(es), {} worker(s) run",
                "cache",
                report.stats.cache_fn_hits,
                report.stats.cache_fn_misses,
                report.stats.workers_executed
            );
        }
    }
    if report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
