//! The `ffisafe` command-line tool: analyze OCaml + C glue sources, or
//! sweep a whole directory tree of libraries.
//!
//! ```text
//! ffisafe [--no-flow] [--no-gc] [--jobs N] [--cache-dir DIR|--cache-url URL]
//!         [--no-cache] [--cache-stats] [--format text|json] [--timings]
//!         <file.ml|file.c|dir>...
//! ffisafe sweep [--shards N] [--jobs N] [--cache-dir DIR|--cache-url URL]
//!         [--no-cache] [--schedule name|cost] [--mode in-process|child]
//!         [--manifest FILE] [--retries N] [--no-flow] [--no-gc]
//!         [--format text|json] [--timings] <root>
//! ffisafe cache-serve --cache-dir DIR [--listen ADDR]
//! ```
//!
//! Exit-code policy (also documented in `--help` and the README):
//!
//! * `0` — analysis ran and found no errors;
//! * `1` — analysis ran and found errors (for `sweep`: in any library);
//! * `2` — usage or I/O problem (bad flag, unreadable input, unknown file
//!   kind, unopenable cache directory), or — for `sweep` — a library that
//!   still failed after every retry; the analysis did not fully complete.
//!
//! stdout carries the report and nothing else — with `--format json` it is
//! exactly one parseable JSON document (`schema_version` for single runs,
//! `sweep_schema_version` for sweeps), byte-identical for a sweep at any
//! `--shards`, `--jobs` or `--mode`. All progress, timing and diagnostic
//! chatter goes to stderr.

use ffisafe::shard::{sweep, MapMode, SweepConfig};
use ffisafe::{
    AnalysisOptions, AnalysisRequest, AnalysisService, CacheMode, Corpus, ServiceConfig,
};
use std::process::ExitCode;

const USAGE: &str = "usage: ffisafe [options] <file.ml|file.c|dir>...
       ffisafe sweep [options] <root>
       ffisafe cache-serve --cache-dir DIR [--listen ADDR]

Checks type and GC safety of OCaml-to-C foreign function calls
(Furr & Foster, PLDI 2005). A directory argument loads every .ml/.c
file under it; `ffisafe sweep` analyzes a directory *of libraries*
(one subdirectory each) with sharded map/reduce execution;
`ffisafe cache-serve` exports a cache directory over TCP so
multiple processes or machines share one logical store.

options:
  --no-flow     disable the flow-sensitive dataflow analysis
  --no-gc       disable GC effect tracking and registration checks
  --jobs N, -j N
                inference worker threads (default: all cores); for sweep:
                concurrent shards
  --cache-dir DIR
                two-tier incremental-reanalysis cache: unchanged corpora
                replay their report, unchanged functions skip inference;
                sweeps share it across every shard and child process
  --cache-url tcp://HOST:PORT
                use a remote cache daemon (see `ffisafe cache-serve`)
                instead of a local directory
  --no-cache    ignore --cache-dir/--cache-url (force a cold run)
  --cache-stats print cache store occupancy (entries, live bytes,
                evictions) and hit/miss counters to stderr
  --format text|json
                report format on stdout (default: text); json emits the
                versioned structured report (schema_version 1 / sweep
                schema 1) and nothing else on stdout
  --timings     print per-phase wall-clock/work timings and cache
                hit/miss counts to stderr
  --version     print version and exit
  --help, -h    print this help

sweep options:
  --shards N    shard count (default 0 = one shard per library)
  --schedule name|cost
                shard packing: contiguous name-sorted chunks (default),
                or LPT packing from the per-library costs a previous
                run recorded into sweep-manifest.json (falls back to
                name order when no history exists)
  --mode in-process|child
                run shards in this process (default) or as child
                ffisafe processes over the shared --cache-dir
  --manifest FILE
                where to write sweep-manifest.json (default:
                <cache-dir>/sweep-manifest.json when --cache-dir is set)
  --retries N   extra attempts per failed library (default 2)

cache-serve options:
  --cache-dir DIR
                the cache directory to export (required)
  --listen ADDR TCP address to bind (default 127.0.0.1:0); the chosen
                tcp:// URL is printed to stdout

exit status:
  0  analysis completed, no errors found
  1  analysis completed, errors found
  2  usage or I/O problem, or a library failed after every retry";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("ffisafe: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn print_cache_stats(stats: Option<ffisafe::cache::CacheStats>) {
    match stats {
        Some(s) => {
            eprintln!(
                "{:>12}: {} entry(ies), {} live byte(s), {} eviction(s)",
                "cache store", s.entries, s.live_bytes, s.evictions
            );
            eprintln!(
                "{:>12}: fn {}/{} hit/miss, report {}/{} hit/miss, {} corrupt",
                "cache ops", s.fn_hits, s.fn_misses, s.report_hits, s.report_misses, s.corrupt
            );
        }
        None => eprintln!("{:>12}: disabled (no --cache-dir)", "cache store"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => sweep_main(&args[1..]),
        Some("cache-serve") => cache_serve_main(&args[1..]),
        _ => analyze_main(&args),
    }
}

// ---- `ffisafe cache-serve` ----------------------------------------------

fn cache_serve_main(args: &[String]) -> ExitCode {
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut listen = "127.0.0.1:0".to_string();
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    return usage_error("--cache-dir requires a directory");
                };
                cache_dir = Some(std::path::PathBuf::from(dir));
            }
            "--listen" => {
                let Some(addr) = args.next() else {
                    return usage_error("--listen requires a host:port address");
                };
                listen = addr;
            }
            "--version" | "-V" => {
                println!("ffisafe {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown cache-serve argument `{other}`")),
        }
    }
    let Some(dir) = cache_dir else {
        return usage_error("cache-serve requires --cache-dir");
    };
    let store = match ffisafe::cache::CacheStore::open(
        &dir,
        &ffisafe::core::pipeline::cache::analyzer_cache_version(),
    ) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("ffisafe: cannot open cache at {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    let server = match ffisafe::cache::CacheServer::bind(listen.as_str(), store) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ffisafe: cannot listen on {listen}: {e}");
            return ExitCode::from(2);
        }
    };
    match server.local_addr() {
        // The chosen URL goes to *stdout* (and is flushed by println) so
        // scripts binding port 0 can capture it; chatter stays on stderr.
        Ok(addr) => println!("tcp://{addr}"),
        Err(e) => {
            eprintln!("ffisafe: cannot resolve listening address: {e}");
            return ExitCode::from(2);
        }
    }
    eprintln!("ffisafe: cache-serve exporting {} (Ctrl-C to stop)", dir.display());
    if let Err(e) = server.serve() {
        eprintln!("ffisafe: cache-serve: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

// ---- `ffisafe <files-or-dirs>` ------------------------------------------

fn analyze_main(args: &[String]) -> ExitCode {
    let mut options = AnalysisOptions::default();
    let mut timings = false;
    let mut cache_stats = false;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut cache_url: Option<String> = None;
    let mut no_cache = false;
    let mut format = Format::Text;
    let mut files = Vec::new();
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-flow" => options.flow_sensitive = false,
            "--no-gc" => options.gc_effects = false,
            "--timings" => timings = true,
            "--cache-stats" => cache_stats = true,
            "--no-cache" => no_cache = true,
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    return usage_error("--cache-dir requires a directory");
                };
                cache_dir = Some(std::path::PathBuf::from(dir));
            }
            "--cache-url" => {
                let Some(url) = args.next() else {
                    return usage_error("--cache-url requires a tcp://host:port URL");
                };
                cache_url = Some(url);
            }
            "--format" => {
                format = match parse_format(args.next().as_deref()) {
                    Ok(f) => f,
                    Err(code) => return code,
                };
            }
            "--jobs" | "-j" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage_error("--jobs requires a positive integer");
                };
                if n == 0 {
                    eprintln!("ffisafe: --jobs requires a positive integer");
                    return ExitCode::from(2);
                }
                options.jobs = n;
            }
            "--version" | "-V" => {
                println!("ffisafe {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') && other.len() > 1 => {
                return usage_error(&format!("unknown option `{other}`"));
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("ffisafe: no input files (try --help)");
        return ExitCode::from(2);
    }

    let mut builder = Corpus::builder();
    for path in &files {
        // A directory loads every FFI source under it (sorted); a file is
        // added as-is. A directory with *no* FFI sources is almost always
        // a typo'd path — reporting "no errors found" for it would be a
        // lie, so it is a usage error like an unknown file kind.
        let result = if std::path::Path::new(path).is_dir() {
            match ffisafe::core::source_files_under(std::path::Path::new(path)) {
                Ok(dir_files) if dir_files.is_empty() => {
                    eprintln!("ffisafe: {path}: no .ml/.mli/.c/.h files under directory");
                    return ExitCode::from(2);
                }
                Ok(dir_files) => {
                    let mut b = Ok(builder);
                    for file in dir_files {
                        b = b.and_then(|b| b.source_path(file));
                    }
                    b
                }
                Err(e) => Err(e),
            }
        } else {
            builder.source_path(path)
        };
        builder = match result {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ffisafe: {e}");
                return ExitCode::from(2);
            }
        };
    }
    let corpus = builder.build();

    let service = match AnalysisService::with_config(ServiceConfig {
        cache_dir: if no_cache { None } else { cache_dir },
        cache_url: if no_cache { None } else { cache_url },
        batch_jobs: 0,
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ffisafe: {e}");
            return ExitCode::from(2);
        }
    };

    let request = AnalysisRequest::new(corpus).options(options).cache_mode(if no_cache {
        CacheMode::Bypass
    } else {
        CacheMode::Shared
    });
    let report = match service.analyze(&request) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ffisafe: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => print!("{}", report.render()),
        Format::Json => print!("{}", report.to_json()),
    }
    if timings {
        eprintln!("{:>12}  {:>8}  {:>8}", "phase", "wall", "work");
        for (phase, t) in report.timings.iter() {
            let work = report.timings.get_work(phase);
            eprintln!("{phase:>12}: {:>7.3}s {:>7.3}s", t.as_secs_f64(), work.as_secs_f64());
        }
        // Split the infer work total so the overlay-setup cost (the former
        // snapshot-clone tax) is visible separately from actual solving.
        eprintln!(
            "{:>12}: {:>7.3}s setup, {:>7.3}s solve",
            "infer split",
            report.stats.infer_setup_seconds,
            report.stats.infer_work_seconds - report.stats.infer_setup_seconds,
        );
        eprintln!("{:>12}: {}", "jobs", report.stats.jobs);
        if report.stats.cache_report_hit {
            eprintln!("{:>12}: report tier hit (analysis skipped)", "cache");
        } else {
            eprintln!(
                "{:>12}: {} function hit(s), {} miss(es), {} worker(s) run",
                "cache",
                report.stats.cache_fn_hits,
                report.stats.cache_fn_misses,
                report.stats.workers_executed
            );
        }
    }
    if cache_stats {
        print_cache_stats(service.cache_stats());
    }
    if report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---- `ffisafe sweep <root>` ---------------------------------------------

fn sweep_main(args: &[String]) -> ExitCode {
    let mut config = SweepConfig::default();
    let mut no_cache = false;
    let mut format = Format::Text;
    let mut timings = false;
    let mut cache_stats = false;
    let mut child_mode = false;
    let mut roots = Vec::new();
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-flow" => config.options.flow_sensitive = false,
            "--no-gc" => config.options.gc_effects = false,
            "--timings" => timings = true,
            "--cache-stats" => cache_stats = true,
            "--no-cache" => no_cache = true,
            "--version" | "-V" => {
                println!("ffisafe {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--shards" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage_error("--shards requires an integer");
                };
                config.shards = n;
            }
            "--jobs" | "-j" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage_error("--jobs requires a positive integer");
                };
                if n == 0 {
                    eprintln!("ffisafe: --jobs requires a positive integer");
                    return ExitCode::from(2);
                }
                config.jobs = n;
            }
            "--retries" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage_error("--retries requires an integer");
                };
                config.retries = n;
            }
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    return usage_error("--cache-dir requires a directory");
                };
                config.cache_dir = Some(std::path::PathBuf::from(dir));
            }
            "--cache-url" => {
                let Some(url) = args.next() else {
                    return usage_error("--cache-url requires a tcp://host:port URL");
                };
                config.cache_url = Some(url);
            }
            "--schedule" => {
                match args.next().as_deref().and_then(ffisafe::shard::Schedule::parse) {
                    Some(schedule) => config.schedule = schedule,
                    None => return usage_error("--schedule expects `name` or `cost`"),
                }
            }
            "--manifest" => {
                let Some(path) = args.next() else {
                    return usage_error("--manifest requires a file path");
                };
                config.manifest_path = Some(std::path::PathBuf::from(path));
            }
            "--mode" => match args.next().as_deref() {
                Some("in-process") => child_mode = false,
                Some("child") => child_mode = true,
                Some(other) => {
                    return usage_error(&format!(
                        "--mode expects `in-process` or `child`, got `{other}`"
                    ));
                }
                None => return usage_error("--mode requires `in-process` or `child`"),
            },
            "--format" => {
                format = match parse_format(args.next().as_deref()) {
                    Ok(f) => f,
                    Err(code) => return code,
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') && other.len() > 1 => {
                return usage_error(&format!("unknown option `{other}`"));
            }
            other => roots.push(other.to_string()),
        }
    }
    let [root] = roots.as_slice() else {
        return usage_error("sweep expects exactly one corpus root directory");
    };
    if no_cache {
        config.cache_dir = None;
        config.cache_url = None;
    }
    if child_mode {
        let program = std::env::current_exe().unwrap_or_else(|_| "ffisafe".into());
        config.mode = MapMode::ChildProcess { program };
    }

    let output = match sweep(std::path::Path::new(root), &config) {
        Ok(output) => output,
        Err(e) => {
            eprintln!("ffisafe: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => print!("{}", output.report.render()),
        Format::Json => print!("{}", output.report.to_json()),
    }
    if timings {
        let s = &output.stats;
        eprintln!(
            "{:>12}: {} planned, {} executed, {} warm",
            "shards", output.shard_count, s.shards_executed, s.shards_warm
        );
        eprintln!(
            "{:>12}: {} analyzed, {} failed, {} retry(ies)",
            "libraries",
            output.library_count - s.libraries_failed,
            s.libraries_failed,
            s.retries_used
        );
        eprintln!(
            "{:>12}: {} function hit(s), {} miss(es), {} report hit(s), {} worker(s) run",
            "cache", s.cache_fn_hits, s.cache_fn_misses, s.report_hits, s.workers_executed
        );
        eprintln!(
            "{:>12}: {:.3}s wall, {:.3}s inference work, {} function(s), {} pass(es)",
            "sweep", s.wall_seconds, s.work_seconds, s.functions, s.passes
        );
        eprintln!(
            "{:>12}: {:.3}s (longest per-worker inference chain)",
            "critical path", s.critical_path_seconds
        );
        print_cache_stats(output.report.cache_store);
    }
    if cache_stats && !timings {
        print_cache_stats(output.report.cache_store);
    }
    for failure in &output.report.failures {
        eprintln!("ffisafe: {}: {}", failure.library, failure.error);
    }
    if !output.report.failures.is_empty() {
        ExitCode::from(2)
    } else if output.report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_format(value: Option<&str>) -> Result<Format, ExitCode> {
    match value {
        Some("text") => Ok(Format::Text),
        Some("json") => Ok(Format::Json),
        Some(other) => {
            Err(usage_error(&format!("--format expects `text` or `json`, got `{other}`")))
        }
        None => Err(usage_error("--format requires `text` or `json`")),
    }
}
