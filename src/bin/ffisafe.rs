//! The `ffisafe` command-line tool: analyze OCaml + C glue sources, or
//! sweep a whole directory tree of libraries.
//!
//! ```text
//! ffisafe [--no-flow] [--no-gc] [--jobs N] [--cache-dir DIR|--cache-url URL]
//!         [--no-cache] [--cache-stats] [--format text|json] [--timings]
//!         [--trace-out FILE] [--metrics-out FILE] <file.ml|file.rs|file.c|dir>...
//! ffisafe sweep [--shards N] [--jobs N] [--cache-dir DIR|--cache-url URL]
//!         [--no-cache] [--schedule name|cost] [--mode in-process|child]
//!         [--manifest FILE] [--retries N] [--no-flow] [--no-gc]
//!         [--format text|json] [--timings] [--trace-out FILE]
//!         [--metrics-out FILE] <root>
//! ffisafe cache-serve --cache-dir DIR [--listen ADDR]
//!         [--log-level error|warn|info|debug] [--trace-out FILE]
//!         [--metrics-out FILE]
//! ffisafe serve [--listen ADDR] [--cache-dir DIR|--cache-url URL]
//!         [--max-inflight N] [--queue N] [--watch ROOT]
//!         [--watch-interval-ms N] [--log-level error|warn|info|debug]
//!         [--trace-out FILE] [--metrics-out FILE]
//! ffisafe client --server-url tcp://HOST:PORT [--no-flow] [--no-gc]
//!         [--jobs N] [--no-cache] [--format text|json] <file|dir>...
//! ```
//!
//! Exit-code policy (also documented in `--help` and the README):
//!
//! * `0` — analysis ran and found no errors;
//! * `1` — analysis ran and found errors (for `sweep`: in any library);
//! * `2` — usage or I/O problem (bad flag, unreadable input, unknown file
//!   kind, unopenable cache directory), or — for `sweep` — a library that
//!   still failed after every retry; the analysis did not fully complete.
//!
//! stdout carries the report and nothing else — with `--format json` it is
//! exactly one parseable JSON document (`schema_version` for single runs,
//! `sweep_schema_version` for sweeps), byte-identical for a sweep at any
//! `--shards`, `--jobs` or `--mode`. All progress, timing and diagnostic
//! chatter goes to stderr.

use ffisafe::shard::{sweep, MapMode, SweepConfig};
use ffisafe::support::telemetry::{self, LogLevel, MetricsRegistry};
use ffisafe::{
    AnalysisOptions, AnalysisRequest, AnalysisService, CacheMode, Corpus, ServiceConfig,
};
use std::process::ExitCode;

const USAGE: &str = "usage: ffisafe [options] <file.ml|file.rs|file.c|dir>...
       ffisafe sweep [options] <root>
       ffisafe cache-serve --cache-dir DIR [--listen ADDR]
       ffisafe serve [--listen ADDR] [--cache-dir DIR] [--watch ROOT]
       ffisafe client --server-url tcp://HOST:PORT <file|dir>...

Checks type and GC safety of OCaml-to-C foreign function calls
(Furr & Foster, PLDI 2005) and layout safety of Rust extern \"C\"
boundaries against the same C sources. A directory argument loads
every .ml/.rs/.c file under it; `ffisafe sweep` analyzes a directory *of libraries*
(one subdirectory each) with sharded map/reduce execution;
`ffisafe cache-serve` exports a cache directory over TCP so
multiple processes or machines share one logical store;
`ffisafe serve` keeps a resident analysis daemon warm and
`ffisafe client` (or `--server-url` on a plain run) submits to it.

options:
  --no-flow     disable the flow-sensitive dataflow analysis
  --no-gc       disable GC effect tracking and registration checks
  --jobs N, -j N
                inference worker threads (default: all cores); for sweep:
                concurrent shards
  --cache-dir DIR
                two-tier incremental-reanalysis cache: unchanged corpora
                replay their report, unchanged functions skip inference;
                sweeps share it across every shard and child process
  --cache-url tcp://HOST:PORT
                use a remote cache daemon (see `ffisafe cache-serve`)
                instead of a local directory
  --no-cache    ignore --cache-dir/--cache-url (force a cold run)
  --cache-stats print cache store occupancy (entries, live bytes,
                evictions) and hit/miss counters to stderr
  --format text|json
                report format on stdout (default: text); json emits the
                versioned structured report (schema_version 1 / sweep
                schema 1) and nothing else on stdout
  --timings     print the run's metrics registry (per-phase wall/work
                timings, cache hit/miss counters, ...) to stderr
  --trace-out FILE
                record tracing spans and write them as Chrome
                trace-event JSON (chrome://tracing, Perfetto) on exit
  --metrics-out FILE
                write the run's metrics registry in Prometheus text
                exposition format on exit
  --version     print version and exit
  --help, -h    print this help

sweep options:
  --shards N    shard count (default 0 = one shard per library)
  --schedule name|cost
                shard packing: contiguous name-sorted chunks (default),
                or LPT packing from the per-library costs a previous
                run recorded into sweep-manifest.json (falls back to
                name order when no history exists)
  --mode in-process|child
                run shards in this process (default) or as child
                ffisafe processes over the shared --cache-dir
  --manifest FILE
                where to write sweep-manifest.json (default:
                <cache-dir>/sweep-manifest.json when --cache-dir is set)
  --retries N   extra attempts per failed library (default 2)

cache-serve options:
  --cache-dir DIR
                the cache directory to export (required)
  --listen ADDR TCP address to bind (default 127.0.0.1:0); the chosen
                tcp:// URL is printed to stdout
  --log-level error|warn|info|debug
                stderr log verbosity (default info): session open/
                refuse, per-op detail at debug, degraded operations
  --trace-out FILE
                rewrite a Chrome trace-event snapshot of the daemon's
                spans after each client session
  --metrics-out FILE
                rewrite a Prometheus metrics snapshot after each client
                session (same text the METRICS wire op serves)

serve options:
  --listen ADDR TCP address to bind (default 127.0.0.1:0); the chosen
                tcp:// URL is printed to stdout
  --cache-dir DIR | --cache-url tcp://HOST:PORT
                shared analysis cache behind the daemon (warm
                resubmissions replay their report without inference)
  --max-inflight N
                concurrent analyses admitted (default 0 = one per core);
                admitted auto-jobs requests split the cores fairly
  --queue N     analyses allowed to wait for a slot before the daemon
                answers BUSY (default 16)
  --watch ROOT  poll ROOT for content changes, re-analyze on change, and
                stream diagnostics to subscribed clients
  --watch-interval-ms N
                watch poll interval (default 500)
  --log-level, --trace-out, --metrics-out
                as for cache-serve

client options (also usable on a plain `ffisafe` run):
  --server-url tcp://HOST:PORT
                submit the corpus to a resident `ffisafe serve` daemon
                instead of analyzing in-process; output and exit codes
                are identical to a local run. BUSY daemons are retried
                briefly, then reported as exit 2. Mutually exclusive
                with --cache-dir/--cache-url (the daemon owns the cache).

exit status:
  0  analysis completed, no errors found
  1  analysis completed, errors found
  2  usage or I/O problem, or a library failed after every retry";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("ffisafe: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn print_cache_stats(stats: Option<ffisafe::cache::CacheStats>) {
    match stats {
        Some(s) => {
            eprintln!(
                "{:>12}: {} entry(ies), {} live byte(s), {} eviction(s)",
                "cache store", s.entries, s.live_bytes, s.evictions
            );
            eprintln!(
                "{:>12}: fn {}/{} hit/miss, report {}/{} hit/miss, {} corrupt",
                "cache ops", s.fn_hits, s.fn_misses, s.report_hits, s.report_misses, s.corrupt
            );
        }
        None => eprintln!("{:>12}: disabled (no --cache-dir)", "cache store"),
    }
}

/// Writes the side-channel telemetry files requested via `--trace-out` /
/// `--metrics-out`. These never touch stdout, so the report bytes stay
/// identical whether or not telemetry is enabled; a write failure is an
/// I/O error (exit 2) like any other unusable output path.
fn write_telemetry_outputs(
    trace_out: Option<&std::path::Path>,
    metrics_out: Option<&std::path::Path>,
    registry: &MetricsRegistry,
) -> Result<(), ExitCode> {
    if let Some(path) = trace_out {
        telemetry::flush_thread();
        let spans = telemetry::drain_spans();
        if let Err(e) = std::fs::write(path, telemetry::chrome_trace_json(&spans)) {
            eprintln!("ffisafe: cannot write trace to {}: {e}", path.display());
            return Err(ExitCode::from(2));
        }
    }
    if let Some(path) = metrics_out {
        if let Err(e) = std::fs::write(path, registry.to_prometheus()) {
            eprintln!("ffisafe: cannot write metrics to {}: {e}", path.display());
            return Err(ExitCode::from(2));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => sweep_main(&args[1..]),
        Some("cache-serve") => cache_serve_main(&args[1..]),
        Some("serve") => serve_main(&args[1..]),
        // `client` is analyze with a mandatory daemon; same flags, same
        // output, same exit codes.
        Some("client") => analyze_main(&args[1..], true),
        _ => analyze_main(&args, false),
    }
}

// ---- `ffisafe serve` ----------------------------------------------------

fn serve_main(args: &[String]) -> ExitCode {
    let mut config = ffisafe::ServeConfig::default();
    let mut listen = "127.0.0.1:0".to_string();
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut log_level = LogLevel::Info;
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                let Some(addr) = args.next() else {
                    return usage_error("--listen requires a host:port address");
                };
                listen = addr;
            }
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    return usage_error("--cache-dir requires a directory");
                };
                config.service.cache_dir = Some(std::path::PathBuf::from(dir));
            }
            "--cache-url" => {
                let Some(url) = args.next() else {
                    return usage_error("--cache-url requires a tcp://host:port URL");
                };
                config.service.cache_url = Some(url);
            }
            "--max-inflight" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage_error("--max-inflight requires an integer");
                };
                config.max_inflight = n;
            }
            "--queue" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage_error("--queue requires an integer");
                };
                config.queue_depth = n;
            }
            "--watch" => {
                let Some(root) = args.next() else {
                    return usage_error("--watch requires a directory");
                };
                config.watch_root = Some(std::path::PathBuf::from(root));
            }
            "--watch-interval-ms" => {
                let Some(ms) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage_error("--watch-interval-ms requires an integer");
                };
                config.watch_interval = std::time::Duration::from_millis(ms);
            }
            "--log-level" => match args.next().as_deref().and_then(LogLevel::parse) {
                Some(level) => log_level = level,
                None => {
                    return usage_error("--log-level expects `error`, `warn`, `info`, or `debug`");
                }
            },
            "--trace-out" => {
                let Some(path) = args.next() else {
                    return usage_error("--trace-out requires a file path");
                };
                trace_out = Some(std::path::PathBuf::from(path));
            }
            "--metrics-out" => {
                let Some(path) = args.next() else {
                    return usage_error("--metrics-out requires a file path");
                };
                metrics_out = Some(std::path::PathBuf::from(path));
            }
            "--version" | "-V" => {
                println!("ffisafe {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown serve argument `{other}`")),
        }
    }
    if let Some(root) = &config.watch_root {
        if !root.is_dir() {
            eprintln!("ffisafe: --watch root {} is not a directory", root.display());
            return ExitCode::from(2);
        }
    }
    telemetry::set_log_level(log_level);
    let mut server = match ffisafe::AnalysisServer::bind(listen.as_str(), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ffisafe: cannot start daemon on {listen}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = trace_out {
        telemetry::set_tracing(true);
        server.set_trace_out(path);
    }
    if let Some(path) = metrics_out {
        server.set_metrics_out(path);
    }
    match server.local_addr() {
        // The chosen URL goes to *stdout* (and is flushed by println) so
        // scripts binding port 0 can capture it; chatter stays on stderr.
        Ok(addr) => println!("tcp://{addr}"),
        Err(e) => {
            eprintln!("ffisafe: cannot resolve listening address: {e}");
            return ExitCode::from(2);
        }
    }
    if let Err(e) = server.serve() {
        eprintln!("ffisafe: serve: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

// ---- `ffisafe cache-serve` ----------------------------------------------

fn cache_serve_main(args: &[String]) -> ExitCode {
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut listen = "127.0.0.1:0".to_string();
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut log_level = LogLevel::Info;
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    return usage_error("--cache-dir requires a directory");
                };
                cache_dir = Some(std::path::PathBuf::from(dir));
            }
            "--listen" => {
                let Some(addr) = args.next() else {
                    return usage_error("--listen requires a host:port address");
                };
                listen = addr;
            }
            "--log-level" => match args.next().as_deref().and_then(LogLevel::parse) {
                Some(level) => log_level = level,
                None => {
                    return usage_error("--log-level expects `error`, `warn`, `info`, or `debug`");
                }
            },
            "--trace-out" => {
                let Some(path) = args.next() else {
                    return usage_error("--trace-out requires a file path");
                };
                trace_out = Some(std::path::PathBuf::from(path));
            }
            "--metrics-out" => {
                let Some(path) = args.next() else {
                    return usage_error("--metrics-out requires a file path");
                };
                metrics_out = Some(std::path::PathBuf::from(path));
            }
            "--version" | "-V" => {
                println!("ffisafe {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown cache-serve argument `{other}`")),
        }
    }
    let Some(dir) = cache_dir else {
        return usage_error("cache-serve requires --cache-dir");
    };
    let store = match ffisafe::cache::CacheStore::open(
        &dir,
        &ffisafe::core::pipeline::cache::analyzer_cache_version(),
    ) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("ffisafe: cannot open cache at {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    telemetry::set_log_level(log_level);
    let mut server = match ffisafe::cache::CacheServer::bind(listen.as_str(), store) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ffisafe: cannot listen on {listen}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = trace_out {
        telemetry::set_tracing(true);
        server.set_trace_out(path);
    }
    if let Some(path) = metrics_out {
        server.set_metrics_out(path);
    }
    match server.local_addr() {
        // The chosen URL goes to *stdout* (and is flushed by println) so
        // scripts binding port 0 can capture it; chatter stays on stderr.
        Ok(addr) => println!("tcp://{addr}"),
        Err(e) => {
            eprintln!("ffisafe: cannot resolve listening address: {e}");
            return ExitCode::from(2);
        }
    }
    telemetry::log(
        LogLevel::Info,
        "cache-serve",
        &format!("exporting {} (Ctrl-C to stop)", dir.display()),
    );
    if let Err(e) = server.serve() {
        eprintln!("ffisafe: cache-serve: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

// ---- `ffisafe <files-or-dirs>` / `ffisafe client` -----------------------

fn analyze_main(args: &[String], require_server: bool) -> ExitCode {
    let mut options = AnalysisOptions::default();
    let mut timings = false;
    let mut cache_stats = false;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut cache_url: Option<String> = None;
    let mut server_url: Option<String> = None;
    let mut no_cache = false;
    let mut format = Format::Text;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut files = Vec::new();
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--server-url" => {
                let Some(url) = args.next() else {
                    return usage_error("--server-url requires a tcp://host:port URL");
                };
                server_url = Some(url);
            }
            "--no-flow" => options.flow_sensitive = false,
            "--no-gc" => options.gc_effects = false,
            "--timings" => timings = true,
            "--cache-stats" => cache_stats = true,
            "--no-cache" => no_cache = true,
            "--trace-out" => {
                let Some(path) = args.next() else {
                    return usage_error("--trace-out requires a file path");
                };
                trace_out = Some(std::path::PathBuf::from(path));
            }
            "--metrics-out" => {
                let Some(path) = args.next() else {
                    return usage_error("--metrics-out requires a file path");
                };
                metrics_out = Some(std::path::PathBuf::from(path));
            }
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    return usage_error("--cache-dir requires a directory");
                };
                cache_dir = Some(std::path::PathBuf::from(dir));
            }
            "--cache-url" => {
                let Some(url) = args.next() else {
                    return usage_error("--cache-url requires a tcp://host:port URL");
                };
                cache_url = Some(url);
            }
            "--format" => {
                format = match parse_format(args.next().as_deref()) {
                    Ok(f) => f,
                    Err(code) => return code,
                };
            }
            "--jobs" | "-j" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage_error("--jobs requires a positive integer");
                };
                if n == 0 {
                    eprintln!("ffisafe: --jobs requires a positive integer");
                    return ExitCode::from(2);
                }
                options.jobs = n;
            }
            "--version" | "-V" => {
                println!("ffisafe {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') && other.len() > 1 => {
                return usage_error(&format!("unknown option `{other}`"));
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("ffisafe: no input files (try --help)");
        return ExitCode::from(2);
    }
    if require_server && server_url.is_none() {
        return usage_error("client requires --server-url tcp://HOST:PORT");
    }
    if server_url.is_some() {
        // The daemon owns the cache; a client-side cache location would
        // silently diverge from what the daemon actually used.
        if cache_dir.is_some() || cache_url.is_some() {
            return usage_error("--server-url is mutually exclusive with --cache-dir/--cache-url");
        }
        if timings || cache_stats {
            return usage_error("--timings/--cache-stats are not available with --server-url");
        }
    }
    if trace_out.is_some() {
        telemetry::set_tracing(true);
    }

    let mut builder = Corpus::builder();
    for path in &files {
        // A directory loads every FFI source under it (sorted); a file is
        // added as-is. A directory with *no* FFI sources is almost always
        // a typo'd path — reporting "no errors found" for it would be a
        // lie, so it is a usage error like an unknown file kind.
        let result = if std::path::Path::new(path).is_dir() {
            match ffisafe::core::source_files_under(std::path::Path::new(path)) {
                Ok(dir_files) if dir_files.is_empty() => {
                    eprintln!("ffisafe: {path}: no .ml/.mli/.rs/.c/.h files under directory");
                    return ExitCode::from(2);
                }
                Ok(dir_files) => {
                    let mut b = Ok(builder);
                    for file in dir_files {
                        b = b.and_then(|b| b.source_path(file));
                    }
                    b
                }
                Err(e) => Err(e),
            }
        } else {
            builder.source_path(path)
        };
        builder = match result {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ffisafe: {e}");
                return ExitCode::from(2);
            }
        };
    }
    let corpus = builder.build();

    if let Some(url) = server_url {
        return analyze_remote(&url, &corpus, options, no_cache, format, trace_out.as_deref());
    }

    let service = match AnalysisService::with_config(ServiceConfig {
        cache_dir: if no_cache { None } else { cache_dir },
        cache_url: if no_cache { None } else { cache_url },
        batch_jobs: 0,
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ffisafe: {e}");
            return ExitCode::from(2);
        }
    };

    let request = AnalysisRequest::new(corpus).options(options).cache_mode(if no_cache {
        CacheMode::Bypass
    } else {
        CacheMode::Shared
    });
    let report = match service.analyze(&request) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ffisafe: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => print!("{}", report.render()),
        Format::Json => print!("{}", report.to_json()),
    }
    // The --timings table and the --metrics-out file are two renderers over
    // the same registry, so they can never disagree.
    let mut registry = MetricsRegistry::new();
    if timings || metrics_out.is_some() {
        report.feed_metrics(&mut registry);
        if let Some(stats) = service.cache_stats() {
            stats.feed_metrics(&mut registry);
        }
    }
    if timings {
        eprint!("{}", registry.render_text());
        if registry.counter("ffisafe_cache_report_hits_total", &[]).unwrap_or(0) > 0 {
            eprintln!("  cache: report tier hit (analysis skipped)");
        }
    }
    if let Err(code) =
        write_telemetry_outputs(trace_out.as_deref(), metrics_out.as_deref(), &registry)
    {
        return code;
    }
    if cache_stats {
        print_cache_stats(service.cache_stats());
    }
    if report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Submits `corpus` to a resident `ffisafe serve` daemon and renders the
/// daemon's report exactly as a local run would. BUSY replies are retried
/// briefly (the daemon advertises backpressure; a short wait usually
/// clears it), then reported as exit 2.
fn analyze_remote(
    url: &str,
    corpus: &Corpus,
    options: AnalysisOptions,
    no_cache: bool,
    format: Format,
    trace_out: Option<&std::path::Path>,
) -> ExitCode {
    let mut client = match ffisafe::ServeClient::connect(url) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("ffisafe: {e}");
            return ExitCode::from(2);
        }
    };
    let mode = if no_cache { CacheMode::Bypass } else { CacheMode::Shared };
    let mut outcome = None;
    for attempt in 0..20 {
        match client.analyze(corpus, options, mode) {
            Ok(ffisafe::serve::Reply::Analyze(o)) => {
                outcome = Some(*o);
                break;
            }
            Ok(ffisafe::serve::Reply::Busy { running, queued }) => {
                if attempt == 0 {
                    eprintln!(
                        "ffisafe: server busy ({running} running, {queued} queued), retrying"
                    );
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Ok(ffisafe::serve::Reply::Error { message }) => {
                eprintln!("ffisafe: server: {message}");
                return ExitCode::from(2);
            }
            Ok(other) => {
                eprintln!("ffisafe: server sent an unexpected reply: {other:?}");
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("ffisafe: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(outcome) = outcome else {
        eprintln!("ffisafe: server still busy after 20 attempts; giving up");
        return ExitCode::from(2);
    };
    match format {
        Format::Text => print!("{}", outcome.rendered),
        Format::Json => print!("{}", outcome.report_json),
    }
    if let Err(code) = write_telemetry_outputs(trace_out, None, &MetricsRegistry::new()) {
        return code;
    }
    if outcome.errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---- `ffisafe sweep <root>` ---------------------------------------------

fn sweep_main(args: &[String]) -> ExitCode {
    let mut config = SweepConfig::default();
    let mut no_cache = false;
    let mut format = Format::Text;
    let mut timings = false;
    let mut cache_stats = false;
    let mut child_mode = false;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut roots = Vec::new();
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-flow" => config.options.flow_sensitive = false,
            "--no-gc" => config.options.gc_effects = false,
            "--timings" => timings = true,
            "--cache-stats" => cache_stats = true,
            "--no-cache" => no_cache = true,
            "--trace-out" => {
                let Some(path) = args.next() else {
                    return usage_error("--trace-out requires a file path");
                };
                trace_out = Some(std::path::PathBuf::from(path));
            }
            "--metrics-out" => {
                let Some(path) = args.next() else {
                    return usage_error("--metrics-out requires a file path");
                };
                metrics_out = Some(std::path::PathBuf::from(path));
            }
            "--version" | "-V" => {
                println!("ffisafe {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--shards" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage_error("--shards requires an integer");
                };
                config.shards = n;
            }
            "--jobs" | "-j" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage_error("--jobs requires a positive integer");
                };
                if n == 0 {
                    eprintln!("ffisafe: --jobs requires a positive integer");
                    return ExitCode::from(2);
                }
                config.jobs = n;
            }
            "--retries" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage_error("--retries requires an integer");
                };
                config.retries = n;
            }
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    return usage_error("--cache-dir requires a directory");
                };
                config.cache_dir = Some(std::path::PathBuf::from(dir));
            }
            "--cache-url" => {
                let Some(url) = args.next() else {
                    return usage_error("--cache-url requires a tcp://host:port URL");
                };
                config.cache_url = Some(url);
            }
            "--schedule" => {
                match args.next().as_deref().and_then(ffisafe::shard::Schedule::parse) {
                    Some(schedule) => config.schedule = schedule,
                    None => return usage_error("--schedule expects `name` or `cost`"),
                }
            }
            "--manifest" => {
                let Some(path) = args.next() else {
                    return usage_error("--manifest requires a file path");
                };
                config.manifest_path = Some(std::path::PathBuf::from(path));
            }
            "--mode" => match args.next().as_deref() {
                Some("in-process") => child_mode = false,
                Some("child") => child_mode = true,
                Some(other) => {
                    return usage_error(&format!(
                        "--mode expects `in-process` or `child`, got `{other}`"
                    ));
                }
                None => return usage_error("--mode requires `in-process` or `child`"),
            },
            "--format" => {
                format = match parse_format(args.next().as_deref()) {
                    Ok(f) => f,
                    Err(code) => return code,
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') && other.len() > 1 => {
                return usage_error(&format!("unknown option `{other}`"));
            }
            other => roots.push(other.to_string()),
        }
    }
    let [root] = roots.as_slice() else {
        return usage_error("sweep expects exactly one corpus root directory");
    };
    if no_cache {
        config.cache_dir = None;
        config.cache_url = None;
    }
    if child_mode {
        let program = std::env::current_exe().unwrap_or_else(|_| "ffisafe".into());
        config.mode = MapMode::ChildProcess { program };
    }
    if trace_out.is_some() {
        telemetry::set_tracing(true);
    }

    let output = match sweep(std::path::Path::new(root), &config) {
        Ok(output) => output,
        Err(e) => {
            eprintln!("ffisafe: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => print!("{}", output.report.render()),
        Format::Json => print!("{}", output.report.to_json()),
    }
    // The --timings table and the --metrics-out file are two renderers over
    // the same registry, so they can never disagree.
    let mut registry = MetricsRegistry::new();
    if timings || metrics_out.is_some() {
        output.feed_metrics(&mut registry);
    }
    if timings {
        eprint!("{}", registry.render_text());
    }
    if let Err(code) =
        write_telemetry_outputs(trace_out.as_deref(), metrics_out.as_deref(), &registry)
    {
        return code;
    }
    if cache_stats {
        print_cache_stats(output.report.cache_store);
    }
    for failure in &output.report.failures {
        eprintln!("ffisafe: {}: {}", failure.library, failure.error);
    }
    if !output.report.failures.is_empty() {
        ExitCode::from(2)
    } else if output.report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_format(value: Option<&str>) -> Result<Format, ExitCode> {
    match value {
        Some("text") => Ok(Format::Text),
        Some("json") => Ok(Format::Json),
        Some(other) => {
            Err(usage_error(&format!("--format expects `text` or `json`, got `{other}`")))
        }
        None => Err(usage_error("--format requires `text` or `json`")),
    }
}
