//! The `ffisafe` command-line tool: analyze OCaml + C glue sources.
//!
//! ```text
//! ffisafe [--no-flow] [--no-gc] <file.ml|file.c>...
//! ```
//!
//! Exit status is 1 when errors are found, 0 otherwise.

use ffisafe::{AnalysisOptions, Analyzer};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut options = AnalysisOptions::default();
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-flow" => options.flow_sensitive = false,
            "--no-gc" => options.gc_effects = false,
            "--help" | "-h" => {
                eprintln!("usage: ffisafe [--no-flow] [--no-gc] <file.ml|file.c>...");
                eprintln!();
                eprintln!("Checks type and GC safety of OCaml-to-C foreign function calls");
                eprintln!("(Furr & Foster, PLDI 2005).");
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("ffisafe: no input files (try --help)");
        return ExitCode::from(2);
    }
    let mut az = Analyzer::with_options(options);
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ffisafe: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if path.ends_with(".ml") || path.ends_with(".mli") {
            az.add_ml_source(path, &src);
        } else if path.ends_with(".c") || path.ends_with(".h") {
            az.add_c_source(path, &src);
        } else {
            eprintln!("ffisafe: skipping {path}: unknown extension");
        }
    }
    let report = az.analyze();
    print!("{}", report.render());
    if report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
