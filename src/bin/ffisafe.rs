//! The `ffisafe` command-line tool: analyze OCaml + C glue sources.
//!
//! ```text
//! ffisafe [--no-flow] [--no-gc] [--jobs N] [--cache-dir DIR] [--no-cache]
//!         [--format text|json] [--timings] <file.ml|file.c>...
//! ```
//!
//! Exit-code policy (also documented in `--help` and the README):
//!
//! * `0` — analysis ran and found no errors;
//! * `1` — analysis ran and found errors;
//! * `2` — usage or I/O problem (bad flag, unreadable input, unknown file
//!   kind, unopenable cache directory); the analysis did not complete.
//!
//! stdout carries the report and nothing else — with `--format json` it is
//! exactly one parseable JSON document. All progress, timing and
//! diagnostic chatter goes to stderr.

use ffisafe::{
    AnalysisOptions, AnalysisRequest, AnalysisService, CacheMode, Corpus, ServiceConfig,
};
use std::process::ExitCode;

const USAGE: &str = "usage: ffisafe [options] <file.ml|file.c>...

Checks type and GC safety of OCaml-to-C foreign function calls
(Furr & Foster, PLDI 2005).

options:
  --no-flow     disable the flow-sensitive dataflow analysis
  --no-gc       disable GC effect tracking and registration checks
  --jobs N, -j N
                inference worker threads (default: all cores)
  --cache-dir DIR
                two-tier incremental-reanalysis cache: unchanged corpora
                replay their report, unchanged functions skip inference
  --no-cache    ignore --cache-dir (force a cold run)
  --format text|json
                report format on stdout (default: text); json emits the
                versioned structured report (schema_version 1) and
                nothing else on stdout
  --timings     print per-phase wall-clock/work timings and cache
                hit/miss counts to stderr
  --version     print version and exit
  --help, -h    print this help

exit status:
  0  analysis completed, no errors found
  1  analysis completed, errors found
  2  usage or I/O problem (analysis did not complete)";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("ffisafe: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut options = AnalysisOptions::default();
    let mut timings = false;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut no_cache = false;
    let mut format = Format::Text;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-flow" => options.flow_sensitive = false,
            "--no-gc" => options.gc_effects = false,
            "--timings" => timings = true,
            "--no-cache" => no_cache = true,
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    return usage_error("--cache-dir requires a directory");
                };
                cache_dir = Some(std::path::PathBuf::from(dir));
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some(other) => {
                        return usage_error(&format!(
                            "--format expects `text` or `json`, got `{other}`"
                        ));
                    }
                    None => return usage_error("--format requires `text` or `json`"),
                };
            }
            "--jobs" | "-j" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage_error("--jobs requires a positive integer");
                };
                if n == 0 {
                    eprintln!("ffisafe: --jobs requires a positive integer");
                    return ExitCode::from(2);
                }
                options.jobs = n;
            }
            "--version" | "-V" => {
                println!("ffisafe {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') && other.len() > 1 => {
                return usage_error(&format!("unknown option `{other}`"));
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("ffisafe: no input files (try --help)");
        return ExitCode::from(2);
    }

    let mut builder = Corpus::builder();
    for path in &files {
        builder = match builder.source_path(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ffisafe: {e}");
                return ExitCode::from(2);
            }
        };
    }
    let corpus = builder.build();

    let service = match AnalysisService::with_config(ServiceConfig {
        cache_dir: if no_cache { None } else { cache_dir },
        batch_jobs: 0,
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ffisafe: {e}");
            return ExitCode::from(2);
        }
    };

    let request = AnalysisRequest::new(corpus).options(options).cache_mode(if no_cache {
        CacheMode::Bypass
    } else {
        CacheMode::Shared
    });
    let report = match service.analyze(&request) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ffisafe: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => print!("{}", report.render()),
        Format::Json => print!("{}", report.to_json()),
    }
    if timings {
        eprintln!("{:>12}  {:>8}  {:>8}", "phase", "wall", "work");
        for (phase, t) in report.timings.iter() {
            let work = report.timings.get_work(phase);
            eprintln!("{phase:>12}: {:>7.3}s {:>7.3}s", t.as_secs_f64(), work.as_secs_f64());
        }
        eprintln!("{:>12}: {}", "jobs", report.stats.jobs);
        if report.stats.cache_report_hit {
            eprintln!("{:>12}: report tier hit (analysis skipped)", "cache");
        } else {
            eprintln!(
                "{:>12}: {} function hit(s), {} miss(es), {} worker(s) run",
                "cache",
                report.stats.cache_fn_hits,
                report.stats.cache_fn_misses,
                report.stats.workers_executed
            );
        }
    }
    if report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
