//! Locks the telemetry subsystem's two core contracts:
//!
//! * **useful** — a traced sweep records the documented span schema
//!   (planner, map, per-library attempts, per-function solves), the
//!   spans nest properly per thread even with concurrent workers and
//!   steals, the Chrome export parses, and a warm sweep records zero
//!   `infer.solve` spans;
//! * **inert** — the reduced sweep report is byte-identical with
//!   tracing on and off, and the metrics registry agrees with the
//!   numbers the sweep JSON itself reports.
//!
//! The same contracts hold for the resident daemon: every wire request
//! runs under a `server.*` span, and the daemon's `ffisafe_server_*`
//! metrics must agree with the sums of the per-request outcomes it
//! returned.
//!
//! Tracing is process-global state, so every test that toggles it runs
//! under one mutex and drains the sink before releasing it.

use ffisafe::shard::{sweep, SweepConfig, SweepOutput};
use ffisafe::support::json::{self, Json};
use ffisafe::support::telemetry::{
    self, chrome_trace_json, drain_spans, nesting_violations, set_tracing, MetricsRegistry,
    SpanEvent,
};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Serializes the tests that toggle the process-global tracing flag.
static TRACING_LOCK: Mutex<()> = Mutex::new(());

/// Builds a small multi-library tree (clean, erroring, imprecise) so the
/// sweep has real per-library work and nonzero diagnostics.
fn build_tree(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("ffisafe-telemetry-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let libs: &[(&str, &str, &str)] = &[
        (
            "alpha",
            "external add : int -> int -> int = \"ml_add\"\n",
            "value ml_add(value a, value b) { return Val_int(Int_val(a) + Int_val(b)); }\n",
        ),
        (
            "bravo",
            "external wrap : int -> int = \"ml_wrap\"\n",
            "value ml_wrap(value n) { return Val_int(n); }\n",
        ),
        (
            "charlie",
            "external id : int -> int = \"ml_id\"\n",
            "value ml_id(value n) { return Val_int(Int_val(n)); }\n",
        ),
    ];
    for (name, ml, c) in libs {
        let dir = root.join(name);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("lib.ml"), ml).unwrap();
        std::fs::write(dir.join("glue.c"), c).unwrap();
    }
    root
}

fn run_sweep(root: &Path, config: &SweepConfig) -> SweepOutput {
    sweep(root, config).expect("sweep completes")
}

fn traced_sweep(root: &Path, config: &SweepConfig) -> (SweepOutput, Vec<SpanEvent>) {
    set_tracing(true);
    let output = run_sweep(root, config);
    set_tracing(false);
    (output, drain_spans())
}

fn count(events: &[SpanEvent], name: &str) -> usize {
    events.iter().filter(|e| e.name == name).count()
}

#[test]
fn traced_sweep_records_the_span_schema_and_nests_per_thread() {
    let _guard = TRACING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let root = build_tree("schema");
    // Several shards and workers so spans interleave across threads —
    // the nesting check must hold under concurrency and steals.
    let config = SweepConfig { shards: 2, jobs: 4, ..SweepConfig::default() };
    let (output, events) = traced_sweep(&root, &config);
    assert_eq!(output.stats.libraries_failed, 0);

    assert_eq!(count(&events, "sweep.plan"), 1);
    assert_eq!(count(&events, "sweep.map"), 1);
    assert_eq!(count(&events, "sweep.reduce"), 1);
    assert_eq!(count(&events, "sweep.library"), 3, "one span per library attempt");
    assert_eq!(count(&events, "service.analyze"), 3);
    assert!(count(&events, "infer.solve") >= 3, "cold run solves every function");
    assert!(count(&events, "phase.infer") > 0);
    assert!(
        count(&events, "phase.frontend_rust") > 0,
        "the Rust frontend stage is timed even for OCaml-only corpora"
    );

    assert_eq!(nesting_violations(&events), 0, "spans must nest within each thread");

    // A library attempt span carries its schema-documented args.
    let lib_span = events.iter().find(|e| e.name == "sweep.library").unwrap();
    assert!(lib_span.arg("library").is_some());
    assert_eq!(lib_span.arg("attempt"), Some("0"));

    // The Chrome export is a parseable top-level array of complete events.
    let exported = chrome_trace_json(&events);
    let doc = json::parse(&exported).expect("trace JSON parses");
    let array = doc.as_array().expect("trace is a top-level array");
    assert_eq!(array.len(), events.len());
    for event in array {
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        assert!(event.get("ts").and_then(Json::as_u64).is_some());
        assert!(event.get("dur").and_then(Json::as_u64).is_some());
        assert!(event.get("tid").and_then(Json::as_u64).is_some());
    }
}

#[test]
fn warm_sweep_emits_zero_infer_solve_spans() {
    let _guard = TRACING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let root = build_tree("warm");
    let config = SweepConfig {
        shards: 2,
        jobs: 2,
        cache_dir: Some(root.join(".cache")),
        ..SweepConfig::default()
    };
    let cold = run_sweep(&root, &config);
    assert!(cold.stats.workers_executed > 0, "cold run must execute workers");

    let (warm, events) = traced_sweep(&root, &config);
    assert_eq!(warm.stats.workers_executed, 0, "warm run must replay from the cache");
    assert_eq!(
        count(&events, "infer.solve"),
        0,
        "solver spans wrap executed workers only, so a warm run records none"
    );
    // The sweep skeleton is still visible: the cache saves the solving,
    // not the orchestration.
    assert_eq!(count(&events, "sweep.library"), 3);
}

#[test]
fn sweep_report_bytes_are_identical_with_tracing_on_and_off() {
    let _guard = TRACING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let root = build_tree("inert");
    let config = SweepConfig { shards: 2, jobs: 2, ..SweepConfig::default() };
    let untraced = run_sweep(&root, &config);
    let (traced, events) = traced_sweep(&root, &config);
    assert!(!events.is_empty(), "traced run must record spans");
    assert_eq!(
        untraced.report.to_json(),
        traced.report.to_json(),
        "tracing changed the sweep JSON"
    );
    assert_eq!(
        untraced.report.render(),
        traced.report.render(),
        "tracing changed the sweep text report"
    );
}

#[test]
fn metrics_registry_agrees_with_the_sweep_json_cache_numbers() {
    let _guard = TRACING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let root = build_tree("metrics");
    let config = SweepConfig {
        shards: 2,
        jobs: 2,
        cache_dir: Some(root.join(".cache")),
        ..SweepConfig::default()
    };
    let output = run_sweep(&root, &config);
    let mut registry = MetricsRegistry::new();
    output.feed_metrics(&mut registry);

    // The registry's sweep counters are fed from the same MapStats the
    // sweep reports, so they must agree exactly.
    assert_eq!(
        registry.counter("ffisafe_sweep_cache_fn_hits_total", &[]),
        Some(output.stats.cache_fn_hits as u64)
    );
    assert_eq!(
        registry.counter("ffisafe_sweep_cache_fn_misses_total", &[]),
        Some(output.stats.cache_fn_misses as u64)
    );

    // And the store-occupancy gauges must equal what the sweep JSON
    // itself publishes under `cache_store`.
    let doc = json::parse(&output.report.to_json()).expect("sweep JSON parses");
    let store = doc.get("cache_store").expect("sweep used a cache dir");
    assert_eq!(
        registry.gauge("ffisafe_cache_store_entries", &[]),
        store.get("entries").and_then(Json::as_u64).map(|v| v as f64)
    );
    assert_eq!(
        registry.gauge("ffisafe_cache_store_live_bytes", &[]),
        store.get("live_bytes").and_then(Json::as_u64).map(|v| v as f64)
    );

    // The Prometheus rendering carries the same counters.
    let prom = registry.to_prometheus();
    assert!(prom.contains(&format!(
        "ffisafe_sweep_cache_fn_misses_total {}",
        output.stats.cache_fn_misses
    )));
    assert!(prom.contains("# TYPE ffisafe_sweep_cache_fn_misses_total counter"));

    // Leave the global sink clean for whichever test runs next.
    let _ = telemetry::drain_spans();
}

// ---- the resident daemon ------------------------------------------------

/// Spawns an in-process daemon over a fresh cache dir and runs `requests`
/// wire analyses against it; returns the per-request outcomes and the
/// daemon's final metrics text.
fn serve_requests(
    tag: &str,
    requests: &[(&str, bool)],
) -> (Vec<ffisafe::serve::AnalyzeOutcome>, String) {
    use ffisafe::{AnalysisOptions, CacheMode, Corpus};
    let cache =
        std::env::temp_dir().join(format!("ffisafe-telemetry-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let config = ffisafe::ServeConfig {
        service: ffisafe::ServiceConfig { cache_dir: Some(cache.clone()), ..Default::default() },
        ..Default::default()
    };
    let addr = ffisafe::AnalysisServer::bind("127.0.0.1:0", config).unwrap().spawn().unwrap();
    let mut client = ffisafe::ServeClient::connect(&format!("tcp://{addr}")).unwrap();
    let mut outcomes = Vec::new();
    for (name, bypass) in requests {
        let corpus = Corpus::builder()
            .ml_source("lib.ml", format!("external f : int -> int = \"{name}\"\n"))
            .c_source(
                "glue.c",
                format!("value {name}(value n) {{ return Val_int(Int_val(n) + 1); }}\n"),
            )
            .build();
        let mode = if *bypass { CacheMode::Bypass } else { CacheMode::Shared };
        match client.analyze(&corpus, AnalysisOptions::default(), mode).unwrap() {
            ffisafe::serve::Reply::Analyze(outcome) => outcomes.push(*outcome),
            other => panic!("daemon replied {other:?}"),
        }
    }
    let metrics = client.metrics().unwrap();
    let _ = std::fs::remove_dir_all(&cache);
    (outcomes, metrics)
}

#[test]
fn daemon_requests_record_the_server_span_family() {
    let _guard = TRACING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = drain_spans(); // start from a clean sink
    set_tracing(true);
    let (outcomes, _) = serve_requests(
        "spans",
        &[("ml_span_a", false), ("ml_span_a", false), ("ml_span_b", false)],
    );
    set_tracing(false);
    let events = drain_spans();
    assert_eq!(outcomes.len(), 3);

    assert_eq!(count(&events, "server.hello"), 1, "one handshake span per session");
    assert_eq!(count(&events, "server.request"), 3, "one span per analyze request");
    assert_eq!(nesting_violations(&events), 0, "daemon spans must nest within each thread");

    // The request span carries the schema-documented outcome args, which
    // must agree with the wire reply for the same request.
    let warm_spans: Vec<_> = events
        .iter()
        .filter(|e| e.name == "server.request" && e.arg("report_hit") == Some("true"))
        .collect();
    assert_eq!(warm_spans.len(), 1, "exactly the resubmission replays from the report tier");
    assert_eq!(warm_spans[0].arg("workers_executed"), Some("0"));

    // The Chrome export stays parseable with the server family included.
    let doc = json::parse(&chrome_trace_json(&events)).expect("trace JSON parses");
    assert_eq!(doc.as_array().map(<[_]>::len), Some(events.len()));
}

#[test]
fn daemon_metrics_agree_with_the_per_request_outcomes() {
    let _guard = TRACING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (outcomes, metrics) = serve_requests(
        "agree",
        &[("ml_m_a", false), ("ml_m_b", false), ("ml_m_a", false), ("ml_m_c", true)],
    );
    assert_eq!(outcomes.len(), 4);

    // Scrape one counter value out of the Prometheus text.
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("{name} missing from:\n{metrics}"))
            .trim()
            .parse()
            .expect("counter value parses")
    };

    let workers: u64 = outcomes.iter().map(|o| o.workers_executed).sum();
    let hits: u64 = outcomes.iter().filter(|o| o.report_hit).count() as u64;
    assert!(workers > 0, "cold requests must execute workers");
    assert_eq!(hits, 1, "exactly the ml_m_a resubmission hits the report tier");

    assert_eq!(counter("ffisafe_server_requests_total"), outcomes.len() as u64);
    assert_eq!(counter("ffisafe_server_workers_executed_total"), workers);
    assert_eq!(counter("ffisafe_server_report_hits_total"), hits);
    assert_eq!(counter("ffisafe_server_sessions_opened_total"), 1);
    assert_eq!(counter("ffisafe_server_busy_total"), 0);
    assert_eq!(counter("ffisafe_server_request_seconds_count"), outcomes.len() as u64);

    // Leave the global sink clean for whichever test runs next.
    let _ = telemetry::drain_spans();
}
