//! Whole-pipeline robustness: the analyzer must never panic, whatever it
//! is fed — including byte-level corruptions of realistic glue code. Real
//! deployments run it over code the tool authors never saw.

use ffisafe::{AnalysisRequest, AnalysisService, Corpus};
use ffisafe_bench::corpus::generate;
use ffisafe_bench::spec::paper_benchmarks;
use ffisafe_support::rng::Rng64;

fn analyze(ml: &str, c: &str) -> usize {
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap().diagnostics.len()
}

/// Deterministically corrupts a string: deletes, duplicates or replaces a
/// byte region (respecting char boundaries).
fn corrupt(src: &str, seed: u64) -> String {
    if src.is_empty() {
        return src.to_string();
    }
    let mut pos = (seed as usize * 7919) % src.len();
    while !src.is_char_boundary(pos) {
        pos -= 1;
    }
    let mut end = (pos + 1 + (seed as usize % 23)).min(src.len());
    while !src.is_char_boundary(end) {
        end -= 1;
    }
    let (a, rest) = src.split_at(pos);
    let (mid, b) = rest.split_at(end - pos);
    match seed % 3 {
        0 => format!("{a}{b}"),           // delete
        1 => format!("{a}{mid}{mid}{b}"), // duplicate
        _ => format!("{a}@#${b}"),        // replace with junk
    }
}

/// Corrupted versions of a real benchmark never panic the analyzer.
#[test]
fn prop_corrupted_corpus_never_panics() {
    let specs = paper_benchmarks();
    let mut rng = Rng64::seed_from_u64(0xF0227);
    for _ in 0..96 {
        let seed = rng.gen_range(0u64..5_000);
        let which = rng.gen_range(0usize..4);
        let bench = generate(&specs[which]); // the small benchmarks
        let ml = corrupt(&bench.ml_source, seed);
        let c = corrupt(&bench.c_source, seed.wrapping_mul(31));
        let _ = analyze(&ml, &c);
    }
}

/// Mixed-up inputs (C fed as OCaml and vice versa) never panic.
#[test]
fn prop_swapped_languages_never_panic() {
    let specs = paper_benchmarks();
    for spec in &specs[..4] {
        let bench = generate(spec);
        let _ = analyze(&bench.c_source, &bench.ml_source);
    }
}

#[test]
fn empty_and_whitespace_inputs() {
    assert_eq!(analyze("", ""), 0);
    assert_eq!(analyze("\n\n  \n", "\t \n"), 0);
}

#[test]
fn ml_only_and_c_only() {
    let service = AnalysisService::new();
    // external with no C definition: nothing to check
    let ml_only =
        Corpus::builder().ml_source("lib.ml", r#"external f : int -> int = "ml_f""#).build();
    assert_eq!(service.analyze(&AnalysisRequest::new(ml_only)).unwrap().error_count(), 0);
    // C with no OCaml side: helpers type-check among themselves
    let c_only = Corpus::builder().c_source("glue.c", "int twice(int x) { return x + x; }").build();
    assert_eq!(service.analyze(&AnalysisRequest::new(c_only)).unwrap().error_count(), 0);
}

#[test]
fn duplicate_function_definitions_do_not_panic() {
    let corpus = Corpus::builder()
        .ml_source("lib.ml", r#"external f : int -> int = "ml_f""#)
        .c_source("a.c", "value ml_f(value n) { return n; }")
        .c_source("b.c", "value ml_f(value n, value m) { return m; }")
        .build();
    // arity conflict must be reported, not panic
    let _ = AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap();
}
