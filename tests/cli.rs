//! End-to-end test of the `ffisafe` command-line binary.

use std::io::Write;
use std::process::Command;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ffisafe-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

#[test]
fn cli_reports_errors_and_exits_nonzero() {
    let ml = write_temp(
        "lib.ml",
        r#"external f : int -> int = "ml_f""#,
    );
    let c = write_temp(
        "glue.c",
        r#"value ml_f(value n) { return Val_int(n); }"#,
    );
    let out = Command::new(env!("CARGO_BIN_EXE_ffisafe"))
        .arg(&ml)
        .arg(&c)
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "buggy input must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("E001"), "{stdout}");
    assert!(stdout.contains("glue.c"), "{stdout}");
}

#[test]
fn cli_accepts_clean_input() {
    let ml = write_temp(
        "ok.ml",
        r#"external add : int -> int -> int = "ml_add""#,
    );
    let c = write_temp(
        "ok.c",
        r#"value ml_add(value a, value b) { return Val_int(Int_val(a) + Int_val(b)); }"#,
    );
    let out = Command::new(env!("CARGO_BIN_EXE_ffisafe"))
        .arg(&ml)
        .arg(&c)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn cli_no_gc_flag_suppresses_gc_errors() {
    let ml = write_temp(
        "gc.ml",
        r#"external wrap : string -> string ref = "ml_wrap""#,
    );
    let c = write_temp(
        "gc.c",
        r#"
value ml_wrap(value s) {
    value cell = caml_alloc(1, 0);
    Store_field(cell, 0, s);
    return cell;
}
"#,
    );
    let strict = Command::new(env!("CARGO_BIN_EXE_ffisafe"))
        .arg(&ml)
        .arg(&c)
        .output()
        .unwrap();
    assert!(!strict.status.success());
    let relaxed = Command::new(env!("CARGO_BIN_EXE_ffisafe"))
        .arg("--no-gc")
        .arg(&ml)
        .arg(&c)
        .output()
        .unwrap();
    assert!(relaxed.status.success(), "{}", String::from_utf8_lossy(&relaxed.stdout));
}

#[test]
fn cli_help_and_missing_files() {
    let help = Command::new(env!("CARGO_BIN_EXE_ffisafe")).arg("--help").output().unwrap();
    assert!(help.status.success());
    let none = Command::new(env!("CARGO_BIN_EXE_ffisafe")).output().unwrap();
    assert_eq!(none.status.code(), Some(2));
    let missing = Command::new(env!("CARGO_BIN_EXE_ffisafe"))
        .arg("/definitely/not/here.c")
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(2));
}
