//! End-to-end test of the `ffisafe` command-line binary.

use std::io::Write;
use std::process::Command;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ffisafe-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

#[test]
fn cli_reports_errors_and_exits_nonzero() {
    let ml = write_temp("lib.ml", r#"external f : int -> int = "ml_f""#);
    let c = write_temp("glue.c", r#"value ml_f(value n) { return Val_int(n); }"#);
    let out =
        Command::new(env!("CARGO_BIN_EXE_ffisafe")).arg(&ml).arg(&c).output().expect("binary runs");
    assert!(!out.status.success(), "buggy input must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("E001"), "{stdout}");
    assert!(stdout.contains("glue.c"), "{stdout}");
}

#[test]
fn cli_accepts_clean_input() {
    let ml = write_temp("ok.ml", r#"external add : int -> int -> int = "ml_add""#);
    let c = write_temp(
        "ok.c",
        r#"value ml_add(value a, value b) { return Val_int(Int_val(a) + Int_val(b)); }"#,
    );
    let out =
        Command::new(env!("CARGO_BIN_EXE_ffisafe")).arg(&ml).arg(&c).output().expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn cli_no_gc_flag_suppresses_gc_errors() {
    let ml = write_temp("gc.ml", r#"external wrap : string -> string ref = "ml_wrap""#);
    let c = write_temp(
        "gc.c",
        r#"
value ml_wrap(value s) {
    value cell = caml_alloc(1, 0);
    Store_field(cell, 0, s);
    return cell;
}
"#,
    );
    let strict = Command::new(env!("CARGO_BIN_EXE_ffisafe")).arg(&ml).arg(&c).output().unwrap();
    assert!(!strict.status.success());
    let relaxed = Command::new(env!("CARGO_BIN_EXE_ffisafe"))
        .arg("--no-gc")
        .arg(&ml)
        .arg(&c)
        .output()
        .unwrap();
    assert!(relaxed.status.success(), "{}", String::from_utf8_lossy(&relaxed.stdout));
}

#[test]
fn cli_help_and_missing_files() {
    let help = Command::new(env!("CARGO_BIN_EXE_ffisafe")).arg("--help").output().unwrap();
    assert!(help.status.success());
    let help_out = String::from_utf8_lossy(&help.stdout);
    assert!(help_out.contains("exit status"), "--help documents the exit-code policy: {help_out}");
    assert!(help_out.contains("--format"), "{help_out}");
    let none = Command::new(env!("CARGO_BIN_EXE_ffisafe")).output().unwrap();
    assert_eq!(none.status.code(), Some(2));
    let missing =
        Command::new(env!("CARGO_BIN_EXE_ffisafe")).arg("/definitely/not/here.c").output().unwrap();
    assert_eq!(missing.status.code(), Some(2));
}

#[test]
fn cli_unknown_extension_is_usage_error() {
    // Exit-code policy: an input the tool cannot classify is a usage
    // error (2), not a silent skip.
    let txt = write_temp("notes.txt", "not glue code");
    let out = Command::new(env!("CARGO_BIN_EXE_ffisafe")).arg(&txt).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown file kind"), "{stderr}");
}

#[test]
fn cli_format_json_stdout_is_pure_json() {
    let ml = write_temp("fmt.ml", r#"external f : int -> int = "ml_f""#);
    let c = write_temp("fmt.c", r#"value ml_f(value n) { return Val_int(n); }"#);
    let out = Command::new(env!("CARGO_BIN_EXE_ffisafe"))
        .args(["--format", "json", "--timings"])
        .arg(&ml)
        .arg(&c)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "errors found still drive the exit code");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let doc = ffisafe_support::json::parse(&stdout)
        .expect("stdout must be exactly one parseable JSON document");
    assert_eq!(doc.get("schema_version").and_then(ffisafe_support::json::Json::as_u64), Some(1));
    let summary = doc.get("summary").expect("summary present");
    assert_eq!(summary.get("errors").and_then(ffisafe_support::json::Json::as_u64), Some(1));
    let diags = doc.get("diagnostics").and_then(ffisafe_support::json::Json::as_array).unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].get("code").and_then(ffisafe_support::json::Json::as_str), Some("E001"));
    // --timings chatter went to stderr, not into the JSON
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("infer"), "{stderr}");
}

#[test]
fn cli_format_rejects_garbage() {
    for bad in [&["--format"][..], &["--format", "xml"][..]] {
        let out = Command::new(env!("CARGO_BIN_EXE_ffisafe")).args(bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
    }
}

#[test]
fn cli_unwritable_cache_dir_is_io_error() {
    let ml = write_temp("cd.ml", r#"external f : int -> int = "ml_f""#);
    let out = Command::new(env!("CARGO_BIN_EXE_ffisafe"))
        .args(["--cache-dir", "/proc/definitely-unwritable/x"])
        .arg(&ml)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unopenable cache dir is an I/O error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cache"), "{stderr}");
}

#[test]
fn cli_version_prints_and_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_ffisafe")).arg("--version").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("ffisafe "), "{stdout}");
    assert!(stdout.trim().len() > "ffisafe ".len(), "{stdout}");
}

#[test]
fn cli_unknown_flag_is_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_ffisafe")).arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown option"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn cli_jobs_flag_parses_and_rejects_garbage() {
    let ml = write_temp("j.ml", r#"external add : int -> int = "ml_add""#);
    let c = write_temp("j.c", r#"value ml_add(value a) { return Val_int(Int_val(a)); }"#);
    let ok = Command::new(env!("CARGO_BIN_EXE_ffisafe"))
        .args(["--jobs", "2"])
        .arg(&ml)
        .arg(&c)
        .output()
        .unwrap();
    assert!(ok.status.success(), "{}", String::from_utf8_lossy(&ok.stderr));
    let short = Command::new(env!("CARGO_BIN_EXE_ffisafe"))
        .args(["-j", "1"])
        .arg(&ml)
        .arg(&c)
        .output()
        .unwrap();
    assert!(short.status.success());
    for bad in [&["--jobs", "zero"][..], &["--jobs", "0"][..], &["--jobs"][..]] {
        let out = Command::new(env!("CARGO_BIN_EXE_ffisafe")).args(bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
    }
}

#[test]
fn cli_timings_flag_reports_phases() {
    let ml = write_temp("t.ml", r#"external id : int -> int = "ml_id""#);
    let c = write_temp("t.c", r#"value ml_id(value a) { return a; }"#);
    let out = Command::new(env!("CARGO_BIN_EXE_ffisafe"))
        .arg("--timings")
        .arg(&ml)
        .arg(&c)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    for phase in ["frontend_ml", "frontend_c", "infer", "discharge", "jobs", "work", "cache"] {
        assert!(stderr.contains(phase), "missing {phase} in: {stderr}");
    }
}

#[test]
fn cli_cache_dir_warm_run_is_identical_and_observable() {
    let ml = write_temp("cache.ml", r#"external f : int -> int = "ml_f""#);
    let c = write_temp("cache.c", r#"value ml_f(value n) { return Val_int(n); }"#);
    let cache = std::env::temp_dir().join(format!("ffisafe-cli-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);

    let run = |extra: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ffisafe"));
        cmd.args(["--cache-dir", cache.to_str().unwrap(), "--timings"]);
        cmd.args(extra);
        cmd.arg(&ml).arg(&c);
        cmd.output().unwrap()
    };

    let cold = run(&[]);
    assert_eq!(cold.status.code(), Some(1), "buggy input exits 1");
    let warm = run(&[]);
    assert_eq!(warm.status.code(), Some(1), "cached error count drives the exit status");
    // Identical findings modulo the timing suffix on the summary line.
    let strip = |out: &std::process::Output| {
        let s = String::from_utf8_lossy(&out.stdout).into_owned();
        s.rsplit_once(", ").map(|(head, _)| head.to_string()).unwrap_or(s)
    };
    assert_eq!(strip(&cold), strip(&warm));
    let warm_err = String::from_utf8_lossy(&warm.stderr).into_owned();
    assert!(warm_err.contains("report tier hit"), "{warm_err}");

    // --no-cache forces a cold run even with --cache-dir present.
    let forced = run(&["--no-cache"]);
    assert_eq!(forced.status.code(), Some(1));
    let forced_err = String::from_utf8_lossy(&forced.stderr).into_owned();
    assert!(!forced_err.contains("report tier hit"), "{forced_err}");
    assert_eq!(strip(&cold), strip(&forced));

    // --cache-dir without a directory is a usage error.
    let bad = Command::new(env!("CARGO_BIN_EXE_ffisafe")).arg("--cache-dir").output().unwrap();
    assert_eq!(bad.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&cache);
}
