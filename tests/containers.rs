//! Whole-pipeline tests of the builtin container encodings: options,
//! lists, arrays, refs, results and nested combinations, each exercised
//! from realistic C.

use ffisafe::{AnalysisRequest, AnalysisService, Corpus};

fn run(ml: &str, c: &str) -> ffisafe::AnalysisReport {
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap()
}

#[test]
fn option_some_payload_access() {
    let report = run(
        r#"external get : string option -> int = "ml_get""#,
        r#"
        value ml_get(value opt) {
            if (Is_block(opt)) {
                return Val_int(lib_len(String_val(Field(opt, 0))));
            }
            return Val_int(-1);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn option_payload_type_is_checked() {
    let report = run(
        r#"external get : string option -> int = "ml_get""#,
        r#"
        value ml_get(value opt) {
            if (Is_block(opt)) {
                return Field(opt, 0); /* returns the string as an int */
            }
            return Val_int(-1);
        }
        "#,
    );
    assert!(report.error_count() >= 1, "{}", report.render());
}

#[test]
fn list_of_pairs_traversal() {
    let report = run(
        r#"external total : (int * int) list -> int = "ml_total""#,
        r#"
        value ml_total(value l) {
            long acc = 0;
            while (Is_block(l)) {
                value pair = Field(l, 0);
                acc += Int_val(Field(pair, 0)) + Int_val(Field(pair, 1));
                l = Field(l, 1);
            }
            return Val_int(acc);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn list_head_confused_with_tail_is_an_error() {
    let report = run(
        r#"external heads : (int * int) list -> int = "ml_heads""#,
        r#"
        value ml_heads(value l) {
            long acc = 0;
            while (Is_block(l)) {
                /* BUG: field 1 is the tail (a list), not the pair */
                value pair = Field(l, 1);
                acc += Int_val(Field(pair, 0));
                l = Field(l, 1);
            }
            return Val_int(acc);
        }
        "#,
    );
    assert!(report.error_count() >= 1, "{}", report.render());
}

#[test]
fn array_elements_share_one_type() {
    let report = run(
        r#"external first_two : string array -> int = "ml_first_two""#,
        r#"
        value ml_first_two(value arr) {
            int a = lib_len(String_val(Field(arr, 0)));
            int b = lib_len(String_val(Field(arr, 1)));
            return Val_int(a + b);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn array_element_misuse_is_an_error() {
    let report = run(
        r#"external bad : string array -> int = "ml_bad""#,
        r#"
        value ml_bad(value arr) {
            return Val_int(Int_val(Field(arr, 0))); /* string, not int */
        }
        "#,
    );
    assert!(report.error_count() >= 1, "{}", report.render());
}

#[test]
fn ref_update_is_clean() {
    let report = run(
        r#"external incr : int ref -> unit = "ml_incr""#,
        r#"
        value ml_incr(value cell) {
            long v = Int_val(Field(cell, 0));
            Store_field(cell, 0, Val_int(v + 1));
            return Val_unit;
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn result_constructors_have_distinct_payloads() {
    let report = run(
        r#"external describe : (int, string) result -> int = "ml_describe""#,
        r#"
        value ml_describe(value r) {
            if (Is_block(r)) {
                switch (Tag_val(r)) {
                case 0: return Field(r, 0);                       /* Ok of int */
                case 1: return Val_int(lib_len(String_val(Field(r, 0)))); /* Error of string */
                }
            }
            return Val_int(0);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn result_payloads_must_not_be_swapped() {
    let report = run(
        r#"external describe : (int, string) result -> int = "ml_describe""#,
        r#"
        value ml_describe(value r) {
            if (Is_block(r)) {
                switch (Tag_val(r)) {
                case 0: return Val_int(lib_len(String_val(Field(r, 0)))); /* BUG: Ok holds int */
                case 1: return Field(r, 0);                               /* BUG: Error holds string */
                }
            }
            return Val_int(0);
        }
        "#,
    );
    assert!(report.error_count() >= 1, "{}", report.render());
}

#[test]
fn nested_option_in_record() {
    let report = run(
        r#"
        type conn = { fd : int; peer : string option }
        external peer_len : conn -> int = "ml_peer_len"
        "#,
        r#"
        value ml_peer_len(value c) {
            value peer = Field(c, 1);
            if (Is_block(peer)) {
                return Val_int(lib_len(String_val(Field(peer, 0))));
            }
            return Val_int(0);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn unit_returning_glue_is_clean() {
    let report = run(
        r#"external ping : unit -> unit = "ml_ping""#,
        r#"
        value ml_ping(value u) {
            lib_ping();
            return Val_unit;
        }
        "#,
    );
    assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
}

#[test]
fn mutually_recursive_types_via_and_chain() {
    let report = run(
        r#"
        type tree = Leaf | Node of forest
        and forest = Nil | Trees of tree * forest
        external count : tree -> int = "ml_count"
        "#,
        r#"
        value ml_count(value t) {
            long n = 0;
            while (Is_block(t)) {
                value f = Field(t, 0);      /* Node payload: forest */
                if (Is_block(f)) {
                    t = Field(f, 0);        /* Trees head: tree */
                    n = n + 1;
                } else {
                    return Val_int(n);
                }
            }
            return Val_int(n);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn wide_sum_with_many_constructors() {
    // 6 nullary + 6 non-nullary constructors, dispatched exhaustively
    let mut ml = String::from("type wide = ");
    let parts: Vec<String> =
        (0..6).map(|i| format!("N{i}")).chain((0..6).map(|i| format!("B{i} of int"))).collect();
    ml.push_str(&parts.join(" | "));
    ml.push_str("\nexternal pick : wide -> int = \"ml_pick\"\n");
    let mut c = String::from(
        "value ml_pick(value w) {\n    if (Is_long(w)) {\n        switch (Int_val(w)) {\n",
    );
    for i in 0..6 {
        c.push_str(&format!("        case {i}: return Val_int({i});\n"));
    }
    c.push_str("        }\n        return Val_int(-1);\n    }\n    switch (Tag_val(w)) {\n");
    for i in 0..6 {
        c.push_str(&format!("    case {i}: return Field(w, 0);\n"));
    }
    c.push_str("    }\n    return Val_int(-2);\n}\n");
    let report = run(&ml, &c);
    assert_eq!(report.error_count(), 0, "{}", report.render());

    // one constructor beyond the declared sum, both unboxed and boxed
    let bad_c = c.replace(
        "    }\n    return Val_int(-2);",
        "    case 6: return Field(w, 0);\n    }\n    return Val_int(-2);",
    );
    let report = run(&ml, &bad_c);
    assert!(report.error_count() >= 1, "{}", report.render());
}
