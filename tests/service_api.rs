//! Acceptance tests for the service-grade API redesign:
//!
//! * for every workload in the Figure 9 corpus, [`AnalysisService::analyze`]
//!   output is byte-identical to the pre-redesign `Analyzer::analyze`
//!   render (the deprecated facade, which still exercises the historical
//!   entry points);
//! * `analyze_batch` results are independent of submission order and
//!   `--jobs`;
//! * the versioned JSON schema round-trips: serialize → parse →
//!   counts/diagnostics match the in-memory report.

#![allow(deprecated)]

use ffisafe::support::json::{self, Json};
use ffisafe::{
    AnalysisOptions, AnalysisRequest, AnalysisService, Analyzer, Corpus, ServiceConfig,
    REPORT_SCHEMA_VERSION,
};
use ffisafe_bench::corpus::generate;
use ffisafe_bench::figure9::benchmark_corpus;
use ffisafe_bench::spec::paper_benchmarks;

#[test]
fn figure9_service_render_matches_deprecated_analyzer() {
    let service = AnalysisService::new();
    for spec in paper_benchmarks() {
        let bench = generate(&spec);

        let mut az = Analyzer::new();
        az.add_ml_source("lib.ml", &bench.ml_source);
        az.add_c_source("glue.c", &bench.c_source);
        let facade = az.analyze();

        let report = service.analyze(&AnalysisRequest::new(benchmark_corpus(&bench))).unwrap();

        assert_eq!(
            report.render_stable(),
            facade.render_stable(),
            "{}: service and facade renders diverged",
            spec.name
        );
        assert_eq!(report.render(), {
            // render() differs only in the wall-clock suffix
            let mut r = report.render_stable();
            r.pop();
            r.push_str(&format!(", {:.3}s\n", report.stats.seconds));
            r
        });
        assert_eq!(report.error_count(), facade.error_count(), "{}", spec.name);
        assert_eq!(report.warning_count(), facade.warning_count(), "{}", spec.name);
        assert_eq!(report.imprecision_count(), facade.imprecision_count(), "{}", spec.name);
    }
}

#[test]
fn figure9_batch_is_order_and_jobs_invariant() {
    let specs = paper_benchmarks();
    let corpora: Vec<Corpus> = specs.iter().map(|spec| benchmark_corpus(&generate(spec))).collect();

    // Reference renders: sequential, jobs = 1.
    let service = AnalysisService::new();
    let reference: Vec<String> = corpora
        .iter()
        .map(|c| {
            service
                .analyze(
                    &AnalysisRequest::new(c.clone())
                        .options(AnalysisOptions::default().with_jobs(1)),
                )
                .unwrap()
                .render_stable()
        })
        .collect();

    // Reversed submission order, jobs = 8, wide batch pool: every slot
    // must still match its corpus's reference render.
    let wide = AnalysisService::with_config(ServiceConfig {
        cache_dir: None,
        cache_url: None,
        batch_jobs: 4,
    })
    .unwrap();
    let reversed: Vec<AnalysisRequest> = corpora
        .iter()
        .rev()
        .map(|c| AnalysisRequest::new(c.clone()).options(AnalysisOptions::default().with_jobs(8)))
        .collect();
    let results = wide.analyze_batch(&reversed);
    assert_eq!(results.len(), corpora.len());
    for (slot, result) in results.iter().enumerate() {
        let original = corpora.len() - 1 - slot;
        assert_eq!(
            result.as_ref().unwrap().render_stable(),
            reference[original],
            "{}: batch at jobs=8 (reversed) diverged from sequential jobs=1",
            specs[original].name
        );
    }
}

/// Pulls `summary.<key>` out of a parsed report document.
fn summary_count(doc: &Json, key: &str) -> u64 {
    doc.get("summary")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("summary.{key} missing or not an integer"))
}

#[test]
fn json_report_round_trips() {
    // A corpus with every severity bucket: an error, an imprecision
    // (global value) and a note-carrying diagnostic set.
    let corpus = Corpus::builder()
        .ml_source(
            "lib.ml",
            r#"
type handle
external f : int -> int = "ml_f"
external g : 'a -> int = "ml_g"
"#,
        )
        .c_source(
            "glue.c",
            r#"
value stash;
value ml_f(value n) { return Val_int(n); }
value ml_g(value x) { return Val_int(Int_val(x)); }
"#,
        )
        .build();
    let report = AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap();
    assert!(report.error_count() > 0, "corpus must produce findings:\n{}", report.render());

    let text = report.to_json();
    let doc = json::parse(&text).expect("to_json output must parse");

    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(REPORT_SCHEMA_VERSION as u64)
    );
    assert_eq!(doc.get("tool").and_then(Json::as_str), Some("ffisafe"));

    // Counts match the in-memory report.
    assert_eq!(summary_count(&doc, "errors"), report.error_count() as u64);
    assert_eq!(summary_count(&doc, "warnings"), report.warning_count() as u64);
    assert_eq!(summary_count(&doc, "imprecision"), report.imprecision_count() as u64);
    assert_eq!(summary_count(&doc, "diagnostics"), report.diagnostics.len() as u64);

    // Every diagnostic matches field by field, in order.
    let parsed = doc.get("diagnostics").and_then(Json::as_array).expect("diagnostics array");
    assert_eq!(parsed.len(), report.diagnostics.len());
    for (entry, diag) in parsed.iter().zip(report.diagnostics.iter()) {
        let loc = report.source_map().resolve(diag.span());
        assert_eq!(entry.get("file").and_then(Json::as_str), Some(loc.file.as_str()));
        assert_eq!(entry.get("line").and_then(Json::as_u64), Some(loc.line as u64));
        assert_eq!(entry.get("column").and_then(Json::as_u64), Some(loc.col as u64));
        assert_eq!(
            entry.get("severity").and_then(Json::as_str),
            Some(diag.severity().to_string().as_str())
        );
        assert_eq!(
            entry.get("code").and_then(Json::as_str),
            Some(diag.code().to_string().as_str())
        );
        assert_eq!(entry.get("message").and_then(Json::as_str), Some(diag.message()));
        let notes = entry.get("notes").and_then(Json::as_array).expect("notes array");
        assert_eq!(notes.len(), diag.notes().len());
        for (note_entry, (nspan, ntext)) in notes.iter().zip(diag.notes()) {
            let nloc = report.source_map().resolve(*nspan);
            assert_eq!(note_entry.get("file").and_then(Json::as_str), Some(nloc.file.as_str()));
            assert_eq!(note_entry.get("line").and_then(Json::as_u64), Some(nloc.line as u64));
            assert_eq!(note_entry.get("message").and_then(Json::as_str), Some(ntext.as_str()));
        }
    }

    // Stats and cache counters are present and coherent.
    let stats = doc.get("stats").expect("stats object");
    assert_eq!(stats.get("c_functions").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("externals").and_then(Json::as_u64), Some(2));
    let cache = stats.get("cache").expect("cache counters");
    assert_eq!(cache.get("report_hit").and_then(Json::as_bool), Some(false));
    assert_eq!(cache.get("fn_hits").and_then(Json::as_u64), Some(0));

    // Timings list every phase in pipeline order (the Rust frontend is
    // timed even when the corpus has no .rs files).
    let timings = doc.get("timings").and_then(Json::as_array).expect("timings array");
    let phases: Vec<&str> =
        timings.iter().filter_map(|t| t.get("phase").and_then(Json::as_str)).collect();
    assert_eq!(phases, ["frontend_ml", "frontend_c", "frontend_rust", "infer", "discharge"]);
}

#[test]
fn json_report_is_stable_and_escapes_messages() {
    // One figure9 workload: the JSON body (modulo timing fields) must be
    // identical across jobs settings, and every message must survive the
    // escape → parse round trip.
    let spec = &paper_benchmarks()[0];
    let corpus = benchmark_corpus(&generate(spec));
    let service = AnalysisService::new();
    let strip_timings = |text: &str| -> String {
        text.lines().filter(|l| !l.contains("seconds")).collect::<Vec<_>>().join("\n")
    };
    let a = service
        .analyze(
            &AnalysisRequest::new(corpus.clone()).options(AnalysisOptions::default().with_jobs(1)),
        )
        .unwrap();
    let b = service
        .analyze(&AnalysisRequest::new(corpus).options(AnalysisOptions::default().with_jobs(8)))
        .unwrap();
    assert_eq!(
        strip_timings(&a.to_json()),
        strip_timings(&b.to_json()),
        "JSON body must be jobs-invariant"
    );
    let doc = json::parse(&a.to_json()).expect("parses");
    let diags = doc.get("diagnostics").and_then(Json::as_array).unwrap();
    for (entry, diag) in diags.iter().zip(a.diagnostics.iter()) {
        assert_eq!(entry.get("message").and_then(Json::as_str), Some(diag.message()));
    }
}
