//! Locks the sharded-sweep subsystem's determinism contract:
//!
//! * the reduced `SweepReport` (JSON and text) is **byte-identical**
//!   across shard counts {1, 2, 8}, worker widths (shard arrival
//!   orders), and in-process vs child-process map modes;
//! * a warm sweep over an unchanged tree executes **zero inference
//!   workers** and reproduces the identical report;
//! * the CLI subcommand honors the documented exit-code policy and
//!   writes the versioned manifest.

use ffisafe::shard::{sweep, MapMode, SweepConfig, SweepOutput};
use ffisafe::support::json::{self, Json};
use std::path::{Path, PathBuf};
use std::process::Command;

fn ffisafe_bin() -> &'static str {
    env!("CARGO_BIN_EXE_ffisafe")
}

/// Builds a 5-library tree: two clean, one type error, one GC error, one
/// imprecision — enough shape for partitioning to matter.
fn build_tree(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("ffisafe-sweep-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let libs: &[(&str, &str, &str)] = &[
        (
            "alpha",
            "external add : int -> int -> int = \"ml_add\"\n",
            "value ml_add(value a, value b) { return Val_int(Int_val(a) + Int_val(b)); }\n",
        ),
        (
            "bravo",
            "external wrap : int -> int = \"ml_wrap\"\n",
            // type error: Val_int on an already-wrapped value
            "value ml_wrap(value n) { return Val_int(n); }\n",
        ),
        (
            "charlie",
            "external cell : string -> string ref = \"ml_cell\"\n",
            // GC error: `s` live across caml_alloc, never registered
            "value ml_cell(value s) {\n    value cell = caml_alloc(1, 0);\n    Store_field(cell, 0, s);\n    return cell;\n}\n",
        ),
        (
            "delta",
            "external sum : int array -> int -> int = \"ml_sum\"\n",
            // imprecision: statically-unknown offset
            "value ml_sum(value arr, value n) {\n    int t = 0;\n    int i;\n    for (i = 0; i < Int_val(n); i++) t += Int_val(Field(arr, i));\n    return Val_int(t);\n}\n",
        ),
        (
            "echo",
            "external id : int -> int = \"ml_id\"\n",
            "value ml_id(value n) { return Val_int(Int_val(n)); }\n",
        ),
    ];
    for (name, ml, c) in libs {
        let dir = root.join(name);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("lib.ml"), ml).unwrap();
        std::fs::write(dir.join("glue.c"), c).unwrap();
    }
    root
}

fn run_sweep(root: &Path, config: &SweepConfig) -> SweepOutput {
    sweep(root, config).expect("sweep completes")
}

#[test]
fn sweep_is_byte_identical_across_shard_counts_and_widths() {
    let root = build_tree("shards");
    let baseline = run_sweep(&root, &SweepConfig { shards: 1, jobs: 1, ..SweepConfig::default() });
    assert_eq!(baseline.library_count, 5);
    assert_eq!(baseline.report.error_count(), 2, "{}", baseline.report.render());
    let json = baseline.report.to_json();
    let text = baseline.report.render();
    for shards in [2, 8] {
        for jobs in [1, 4] {
            let other = run_sweep(&root, &SweepConfig { shards, jobs, ..SweepConfig::default() });
            assert_eq!(json, other.report.to_json(), "shards={shards} jobs={jobs}");
            assert_eq!(text, other.report.render(), "shards={shards} jobs={jobs}");
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sweep_is_byte_identical_across_map_modes_over_one_shared_store() {
    let root = build_tree("modes");
    let cache_in = root.join(".cache-in");
    let cache_child = root.join(".cache-child");
    let in_process = run_sweep(
        &root,
        &SweepConfig { shards: 2, cache_dir: Some(cache_in), ..SweepConfig::default() },
    );
    let child = run_sweep(
        &root,
        &SweepConfig {
            shards: 2,
            jobs: 4,
            cache_dir: Some(cache_child),
            mode: MapMode::ChildProcess { program: ffisafe_bin().into() },
            ..SweepConfig::default()
        },
    );
    assert_eq!(child.stats.libraries_failed, 0, "{:?}", child.report.failures);
    assert_eq!(
        in_process.report.to_json(),
        child.report.to_json(),
        "map mode must not leak into the reduced report"
    );
    assert_eq!(in_process.report.render(), child.report.render());
    // occupancy is content-determined, so it matched inside to_json too —
    // but assert it explicitly: both stores hold the same entries/bytes.
    let occ_in = in_process.report.cache_store.unwrap();
    let occ_child = child.report.cache_store.unwrap();
    assert_eq!(occ_in.entries, occ_child.entries);
    assert_eq!(occ_in.live_bytes, occ_child.live_bytes);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn warm_sweep_executes_zero_workers_and_reproduces_the_report() {
    let root = build_tree("warm");
    let cache = root.join(".cache");
    for mode in [MapMode::InProcess, MapMode::ChildProcess { program: ffisafe_bin().into() }] {
        let tag = match &mode {
            MapMode::InProcess => "in-process",
            MapMode::ChildProcess { .. } => "child",
        };
        let _ = std::fs::remove_dir_all(&cache);
        let config = SweepConfig {
            shards: 2,
            cache_dir: Some(cache.clone()),
            mode,
            ..SweepConfig::default()
        };
        let cold = run_sweep(&root, &config);
        assert!(cold.stats.workers_executed >= 5, "{tag}: cold sweep runs workers");
        assert_eq!(cold.stats.shards_warm, 0, "{tag}");

        let warm = run_sweep(&root, &config);
        assert_eq!(warm.stats.workers_executed, 0, "{tag}: warm sweep runs zero workers");
        assert_eq!(warm.stats.report_hits, 5, "{tag}: every library served from tier 2");
        assert_eq!(warm.stats.shards_warm, 2, "{tag}: both shards warm");
        assert_eq!(
            cold.report.to_json(),
            warm.report.to_json(),
            "{tag}: warm report byte-identical"
        );
        assert_eq!(cold.report.render(), warm.report.render(), "{tag}");

        // a re-sweep at a different partitioning is *also* warm: shards
        // are sets of cache entries, not cache keys themselves
        let repartitioned = run_sweep(&root, &SweepConfig { shards: 8, ..config.clone() });
        assert_eq!(repartitioned.stats.workers_executed, 0, "{tag}: repartitioned warm");
        assert_eq!(cold.report.to_json(), repartitioned.report.to_json(), "{tag}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn editing_one_library_reanalyzes_only_that_library() {
    let root = build_tree("edit");
    let cache = root.join(".cache");
    let config = SweepConfig { shards: 2, cache_dir: Some(cache), ..SweepConfig::default() };
    let cold = run_sweep(&root, &config);
    assert_eq!(cold.report.error_count(), 2);

    // fix bravo's bug; everything else must replay from the cache
    std::fs::write(
        root.join("bravo/glue.c"),
        "value ml_wrap(value n) { return Val_int(Int_val(n)); }\n",
    )
    .unwrap();
    let edited = run_sweep(&root, &config);
    assert_eq!(edited.report.error_count(), 1, "bravo fixed, charlie still broken");
    assert_eq!(edited.stats.report_hits, 4, "four unchanged libraries replay");
    assert_eq!(edited.stats.workers_executed, 1, "only bravo's one function runs a worker");
    let _ = std::fs::remove_dir_all(&root);
}

// ---- the CLI subcommand -------------------------------------------------

#[test]
fn sweep_cli_exit_codes_and_json_follow_the_policy() {
    let root = build_tree("cli");
    // errors found => exit 1, stdout is one parseable sweep document
    let out = Command::new(ffisafe_bin())
        .args(["sweep", "--shards", "2", "--format", "json"])
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "errors found => exit 1");
    let doc = json::parse(&String::from_utf8_lossy(&out.stdout)).expect("stdout is pure JSON");
    assert_eq!(doc.get("sweep_schema_version").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("libraries").and_then(Json::as_u64), Some(5));
    assert_eq!(doc.get("summary").and_then(|s| s.get("errors")).and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("cache_store"), Some(&Json::Null), "uncached sweep says so");

    // a clean subtree => exit 0
    let clean = root.join("alpha-only");
    std::fs::create_dir_all(clean.join("alpha")).unwrap();
    std::fs::copy(root.join("alpha/lib.ml"), clean.join("alpha/lib.ml")).unwrap();
    std::fs::copy(root.join("alpha/glue.c"), clean.join("alpha/glue.c")).unwrap();
    let out = Command::new(ffisafe_bin()).arg("sweep").arg(&clean).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // usage problems => exit 2
    for bad in [&["sweep"][..], &["sweep", "--shards", "x", "r"][..]] {
        let out = Command::new(ffisafe_bin()).args(bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
    }
    let out =
        Command::new(ffisafe_bin()).args(["sweep", "/definitely/not/a/root"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "unreadable root => exit 2");

    // shared flags advertised by --help work under the subcommand too
    let out = Command::new(ffisafe_bin()).args(["sweep", "--version"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("ffisafe "));
    let out =
        Command::new(ffisafe_bin()).args(["sweep", "--cache-stats"]).arg(&clean).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cache store"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_broken_library_is_reported_not_fatal_to_the_sweep() {
    let root = build_tree("broken");
    // a dangling symlink named like an FFI source makes foxtrot unloadable
    std::fs::create_dir_all(root.join("foxtrot")).unwrap();
    std::os::unix::fs::symlink("/definitely/not/here.ml", root.join("foxtrot/gone.ml")).unwrap();

    let output = run_sweep(&root, &SweepConfig::default());
    assert_eq!(output.library_count, 5, "the healthy libraries still sweep");
    assert_eq!(output.report.failures.len(), 1);
    assert_eq!(output.report.failures[0].library, "foxtrot");
    assert!(output.report.to_json().contains("\"failures\": [\n    {\"library\": \"foxtrot\""));

    // the CLI surfaces it as exit 2 with the failure on stderr
    let out = Command::new(ffisafe_bin()).arg("sweep").arg(&root).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "failed library => exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("foxtrot"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sweep_cli_writes_the_manifest_and_child_mode_matches_in_process() {
    let root = build_tree("cli-modes");
    let cache_a = root.join(".cache-a");
    let cache_b = root.join(".cache-b");
    let run = |extra: &[&str], cache: &Path| {
        let out = Command::new(ffisafe_bin())
            .args(["sweep", "--format", "json", "--cache-dir"])
            .arg(cache)
            .args(extra)
            .arg(&root)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let in_process = run(&["--shards", "2"], &cache_a);
    let child = run(&["--shards", "3", "--mode", "child", "--jobs", "2"], &cache_b);
    assert_eq!(in_process, child, "CLI sweep byte-identical across modes and shard counts");

    // the manifest landed in the cache dir, versioned and parseable
    let manifest = std::fs::read_to_string(cache_a.join("sweep-manifest.json")).unwrap();
    let doc = json::parse(&manifest).expect("manifest is valid JSON");
    assert_eq!(doc.get("manifest_schema_version").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("libraries").and_then(Json::as_u64), Some(5));
    assert_eq!(
        doc.get("shards").and_then(Json::as_array).map(|s| s.len()),
        Some(2),
        "manifest records the requested partitioning"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cost_schedule_cli_sweeps_are_byte_identical_and_update_the_manifest() {
    let root = build_tree("cli-schedule");
    let cache = root.join(".cache");
    let run = |schedule: &[&str]| {
        let out = Command::new(ffisafe_bin())
            .args(["sweep", "--shards", "2", "--format", "json", "--cache-dir"])
            .arg(&cache)
            .args(schedule)
            .arg(&root)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    // first (name-scheduled) run records per-library costs; the second
    // packs shards from them — and must not change a byte of output
    let name_run = run(&[]);
    let cost_run = run(&["--schedule", "cost"]);
    assert_eq!(name_run, cost_run, "schedule leaked into the reduced report");

    let manifest = std::fs::read_to_string(cache.join("sweep-manifest.json")).unwrap();
    let doc = json::parse(&manifest).expect("manifest is valid JSON");
    assert_eq!(doc.get("manifest_schema_version").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("schedule").and_then(Json::as_str), Some("cost"));
    assert!(manifest.contains("\"cost_seconds\""), "cost rows recorded for the next run");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn remote_backend_sweeps_match_local_and_warm_runs_zero_workers() {
    let root = build_tree("remote");
    let store = ffisafe::cache::CacheStore::open(
        &root.join(".remote-store"),
        &ffisafe::core::pipeline::cache::analyzer_cache_version(),
    )
    .expect("store opens");
    let addr = ffisafe::cache::CacheServer::bind("127.0.0.1:0", store)
        .expect("daemon binds")
        .spawn()
        .expect("daemon spawns");
    let config = SweepConfig {
        shards: 2,
        cache_url: Some(format!("tcp://{addr}")),
        ..SweepConfig::default()
    };
    let cold = run_sweep(&root, &config);
    assert!(cold.stats.workers_executed >= 5, "cold remote sweep runs workers");
    let warm = run_sweep(&root, &config);
    assert_eq!(warm.stats.workers_executed, 0, "warm remote sweep served by the daemon");
    assert_eq!(cold.report.to_json(), warm.report.to_json());

    // child mode reaches the daemon through the CLI's --cache-url flag —
    // a second *process* sharing the same logical store
    let child = run_sweep(
        &root,
        &SweepConfig {
            mode: MapMode::ChildProcess { program: ffisafe_bin().into() },
            ..config.clone()
        },
    );
    assert_eq!(child.stats.libraries_failed, 0, "{:?}", child.report.failures);
    assert_eq!(child.stats.workers_executed, 0, "children warm off the shared daemon");
    assert_eq!(cold.report.to_json(), child.report.to_json());

    // and the whole thing is byte-identical to a local-directory backend
    let local = run_sweep(
        &root,
        &SweepConfig {
            shards: 2,
            cache_dir: Some(root.join(".local-store")),
            ..SweepConfig::default()
        },
    );
    assert_eq!(cold.report.to_json(), local.report.to_json(), "backend leaked into the report");
    assert_eq!(cold.report.render(), local.report.render());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn examples_corpora_sweep_matches_the_documented_findings() {
    // the tree CI smokes over: OCaml/C pairs (strutil seeded with a type
    // error, gadgets with an imprecision, intcalc clean) plus Rust/C
    // pairs (imgcodec seeded with an E011 arity bug, meshgrid with an
    // E013 missing-repr(C) struct, ringbuf clean)
    let out = Command::new(ffisafe_bin())
        .args(["sweep", "--format", "json", "examples/corpora"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = json::parse(&stdout).unwrap();
    let summary = doc.get("summary").unwrap();
    assert_eq!(summary.get("errors").and_then(Json::as_u64), Some(3));
    assert_eq!(summary.get("imprecision").and_then(Json::as_u64), Some(1));
    let libs = doc.get("library_reports").and_then(Json::as_array).unwrap();
    let names: Vec<&str> =
        libs.iter().filter_map(|l| l.get("library").and_then(Json::as_str)).collect();
    assert_eq!(
        names,
        ["gadgets", "imgcodec", "intcalc", "meshgrid", "ringbuf", "strutil"],
        "sorted by library name"
    );
    assert!(stdout.contains("\"code\": \"E011\""), "imgcodec's arity bug: {stdout}");
    assert!(stdout.contains("\"code\": \"E013\""), "meshgrid's repr bug: {stdout}");
}

#[test]
fn plain_cli_rejects_a_directory_with_no_ffi_sources() {
    let dir = std::env::temp_dir().join(format!("ffisafe-emptydir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("README.md"), "nothing to analyze\n").unwrap();
    let out = Command::new(ffisafe_bin()).arg(&dir).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "empty dir must not report 'no errors found'");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no .ml"), "explains why");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn plain_cli_accepts_directory_inputs_and_cache_stats() {
    // a directory argument analyzes every FFI file under it
    let out = Command::new(ffisafe_bin())
        .args(["examples/corpora/intcalc", "--cache-stats"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cache store"), "--cache-stats reports to stderr: {stderr}");
    assert!(stderr.contains("disabled"), "no --cache-dir => disabled: {stderr}");

    let dir = std::env::temp_dir().join(format!("ffisafe-clistats-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = Command::new(ffisafe_bin())
        .args(["examples/corpora/intcalc", "--cache-stats", "--cache-dir"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("entry(ies)"), "occupancy printed: {stderr}");
    assert!(stderr.contains("hit/miss"), "counters printed: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
