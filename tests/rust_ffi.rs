//! End-to-end tests for the Rust `extern "C"` boundary checker: each
//! diagnostic code fires on its seeded defect (positive) and stays silent
//! once the defect is fixed (negative), with the code strings locked —
//! they are part of the stable report format and the cache codec.

use ffisafe::{AnalysisRequest, AnalysisService, Corpus};

fn analyze(rust_src: &str, c_src: &str) -> ffisafe::AnalysisReport {
    let corpus =
        Corpus::builder().rust_source("lib.rs", rust_src).c_source("glue.c", c_src).build();
    AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap()
}

fn codes(report: &ffisafe::AnalysisReport) -> Vec<String> {
    report.diagnostics.iter().map(|d| d.code().to_string()).collect()
}

#[test]
fn e011_arity_mismatch_fires_and_clears() {
    let buggy = analyze(
        r#"extern "C" { fn mix(a: i32, b: i32, c: i32) -> i32; }"#,
        "int mix(int a, int b) { return a + b; }",
    );
    assert_eq!(codes(&buggy), ["E011"]);
    assert_eq!(buggy.error_count(), 1, "arity mismatches are errors");

    let fixed = analyze(
        r#"extern "C" { fn mix(a: i32, b: i32) -> i32; }"#,
        "int mix(int a, int b) { return a + b; }",
    );
    assert!(fixed.diagnostics.is_empty(), "{}", fixed.render());
}

#[test]
fn e012_type_mismatch_fires_and_clears() {
    let buggy = analyze(
        r#"extern "C" { fn scale(x: i64) -> f64; }"#,
        "double scale(double x) { return x; }",
    );
    assert_eq!(codes(&buggy), ["E012"]);

    let fixed = analyze(
        r#"extern "C" { fn scale(x: f64) -> f64; }"#,
        "double scale(double x) { return x; }",
    );
    assert!(fixed.diagnostics.is_empty(), "{}", fixed.render());
}

#[test]
fn e013_missing_repr_c_fires_and_clears() {
    let buggy = analyze(
        r#"
        pub struct Handle { fd: i32 }
        extern "C" { fn h_close(h: *mut Handle) -> i32; }
        "#,
        "typedef struct handle handle_t;\nint h_close(handle_t *h) { return 0; }",
    );
    assert_eq!(codes(&buggy), ["E013"]);

    let fixed = analyze(
        r#"
        #[repr(C)]
        pub struct Handle { fd: i32 }
        extern "C" { fn h_close(h: *mut Handle) -> i32; }
        "#,
        "typedef struct handle handle_t;\nint h_close(handle_t *h) { return 0; }",
    );
    assert!(fixed.diagnostics.is_empty(), "{}", fixed.render());
}

#[test]
fn e014_ffi_unsafe_payload_fires_and_clears() {
    let buggy = analyze(
        r#"
        #[repr(C)]
        pub struct Meta { name: String }
        extern "C" { fn put(m: *const Meta) -> i32; }
        "#,
        "typedef struct meta meta_t;\nint put(meta_t *m) { return 0; }",
    );
    assert_eq!(codes(&buggy), ["E014"]);

    let fixed = analyze(
        r#"
        #[repr(C)]
        pub struct Meta { name: *const c_char }
        extern "C" { fn put(m: *const Meta) -> i32; }
        "#,
        "typedef struct meta meta_t;\nint put(meta_t *m) { return 0; }",
    );
    assert!(fixed.diagnostics.is_empty(), "{}", fixed.render());
}

#[test]
fn w004_nullability_fires_as_warning_and_clears() {
    let buggy = analyze(
        r#"
        #[no_mangle]
        pub extern "C" fn consume(buf: &u8) -> i32 { 0 }
        "#,
        "int consume(char *buf);",
    );
    assert_eq!(codes(&buggy), ["W004"]);
    assert_eq!(buggy.error_count(), 0, "nullability findings are warnings");
    assert_eq!(buggy.warning_count(), 1);

    let fixed = analyze(
        r#"
        #[no_mangle]
        pub extern "C" fn consume(buf: Option<&u8>) -> i32 { 0 }
        "#,
        "int consume(char *buf);",
    );
    assert!(fixed.diagnostics.is_empty(), "{}", fixed.render());
}

/// The Rust findings ride the same severity/JSON machinery as the
/// OCaml/C codes: stable code strings in the JSON document, additive
/// stats fields, and the conditional Rust line-count suffix.
#[test]
fn rust_findings_flow_through_the_versioned_report() {
    let report = analyze(
        r#"extern "C" { fn mix(a: i32, b: i32, c: i32) -> i32; }"#,
        "int mix(int a, int b) { return a + b; }",
    );
    let json = report.to_json();
    let doc = ffisafe::support::json::parse(&json).expect("valid JSON");
    let diags = doc.get("diagnostics").and_then(ffisafe::support::json::Json::as_array).unwrap();
    assert_eq!(diags[0].get("code").and_then(ffisafe::support::json::Json::as_str), Some("E011"));
    let stats = doc.get("stats").expect("stats present");
    assert_eq!(stats.get("rust_loc").and_then(ffisafe::support::json::Json::as_u64), Some(1));
    assert_eq!(stats.get("rust_externs").and_then(ffisafe::support::json::Json::as_u64), Some(1));
    assert!(report.render_stable().contains("lines Rust"), "{}", report.render_stable());
}
