//! Concurrent service use: one [`AnalysisService`] with a shared
//! `--cache-dir` running `analyze_batch` over several corpora.
//!
//! The contract under test:
//!
//! * per-corpus reports are **byte-identical** to sequential
//!   single-corpus runs, at `jobs ∈ {1, 8}` and any batch width;
//! * results come back in submission order;
//! * the shared store's cache hit/miss counters add up — a cold batch
//!   misses once per function, a warm batch is all report-tier hits, and
//!   a batch is exactly as warm as the sequential runs that preceded it.

use ffisafe::{
    AnalysisOptions, AnalysisRequest, AnalysisService, CacheMode, Corpus, ServiceConfig,
};
use std::path::PathBuf;

/// Three distinct corpora with known shapes: clean, type-error, GC-error.
fn corpora() -> Vec<(Corpus, usize)> {
    let clean = Corpus::builder()
        .ml_source("a.ml", r#"external add : int -> int -> int = "ml_add""#)
        .c_source(
            "a.c",
            r#"value ml_add(value a, value b) { return Val_int(Int_val(a) + Int_val(b)); }"#,
        )
        .build();
    let type_error = Corpus::builder()
        .ml_source("b.ml", r#"external f : int -> int = "ml_f""#)
        .c_source("b.c", r#"value ml_f(value n) { return Val_int(n); }"#)
        .build();
    let gc_error = Corpus::builder()
        .ml_source("c.ml", r#"external wrap : string -> string ref = "ml_wrap""#)
        .c_source(
            "c.c",
            r#"
value ml_wrap(value s) {
    value cell = caml_alloc(1, 0);
    Store_field(cell, 0, s);
    return cell;
}
"#,
        )
        .build();
    // (corpus, expected error count)
    vec![(clean, 0), (type_error, 1), (gc_error, 1)]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ffisafe-svc-batch-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn batch_over_shared_cache_matches_sequential_runs() {
    for jobs in [1usize, 8] {
        let dir = temp_dir(&format!("j{jobs}"));
        let sets = corpora();

        // Reference: sequential single-corpus runs on a *separate* cold
        // service (bypassing any cache) — the ground truth output.
        let reference_service = AnalysisService::new();
        let reference: Vec<String> = sets
            .iter()
            .map(|(corpus, _)| {
                reference_service
                    .analyze(
                        &AnalysisRequest::new(corpus.clone())
                            .options(AnalysisOptions::default().with_jobs(jobs)),
                    )
                    .unwrap()
                    .render_stable()
            })
            .collect();

        // One long-lived service with a shared store, wide batch pool.
        let service = AnalysisService::with_config(ServiceConfig {
            cache_dir: Some(dir.clone()),
            cache_url: None,
            batch_jobs: 4,
        })
        .unwrap();
        let requests: Vec<AnalysisRequest> = sets
            .iter()
            .map(|(corpus, _)| {
                AnalysisRequest::new(corpus.clone())
                    .options(AnalysisOptions::default().with_jobs(jobs))
            })
            .collect();

        // Cold batch: all misses, every function analyzed live.
        let cold = service.analyze_batch(&requests);
        assert_eq!(cold.len(), sets.len());
        let mut total_functions = 0;
        let mut total_misses = 0;
        let mut total_workers = 0;
        for (i, result) in cold.iter().enumerate() {
            let report = result.as_ref().unwrap();
            assert_eq!(
                report.render_stable(),
                reference[i],
                "jobs={jobs}: batch slot {i} differs from its sequential run"
            );
            assert_eq!(report.error_count(), sets[i].1, "slot {i} expected errors");
            assert!(!report.stats.cache_report_hit, "cold batch cannot hit the report tier");
            assert_eq!(report.stats.cache_fn_hits, 0, "cold batch has no tier-1 hits");
            total_functions += report.stats.c_functions;
            total_misses += report.stats.cache_fn_misses;
            total_workers += report.stats.workers_executed;
        }
        assert_eq!(total_misses, total_functions, "jobs={jobs}: every function missed once");
        assert_eq!(total_workers, total_functions, "jobs={jobs}: every function ran live");

        // Warm batch: every corpus is a report-tier hit, zero workers.
        let warm = service.analyze_batch(&requests);
        for (i, result) in warm.iter().enumerate() {
            let report = result.as_ref().unwrap();
            assert!(report.stats.cache_report_hit, "jobs={jobs}: slot {i} must replay");
            assert_eq!(report.stats.workers_executed, 0);
            assert_eq!(report.render_stable(), reference[i], "warm replay must be byte-identical");
        }

        // Counters add up against sequential runs over the same store: a
        // fresh sequential pass is served exactly like the warm batch.
        for (i, (corpus, _)) in sets.iter().enumerate() {
            let seq = service
                .analyze(
                    &AnalysisRequest::new(corpus.clone())
                        .options(AnalysisOptions::default().with_jobs(jobs)),
                )
                .unwrap();
            assert!(seq.stats.cache_report_hit);
            assert_eq!(seq.render_stable(), reference[i]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn batch_results_ignore_submission_order() {
    let sets = corpora();
    let service = AnalysisService::with_config(ServiceConfig {
        cache_dir: None,
        cache_url: None,
        batch_jobs: 3,
    })
    .unwrap();
    let forward: Vec<AnalysisRequest> =
        sets.iter().map(|(c, _)| AnalysisRequest::new(c.clone())).collect();
    let reversed: Vec<AnalysisRequest> =
        sets.iter().rev().map(|(c, _)| AnalysisRequest::new(c.clone())).collect();
    let fwd_reports = service.analyze_batch(&forward);
    let rev_reports = service.analyze_batch(&reversed);
    for (i, fwd) in fwd_reports.iter().enumerate() {
        let mirrored = &rev_reports[sets.len() - 1 - i];
        assert_eq!(
            fwd.as_ref().unwrap().render_stable(),
            mirrored.as_ref().unwrap().render_stable(),
            "slot {i} must depend only on its corpus, not its position"
        );
    }
}

#[test]
fn bypass_requests_share_a_batch_with_cached_ones() {
    let dir = temp_dir("mixed");
    let sets = corpora();
    let service = AnalysisService::with_config(ServiceConfig {
        cache_dir: Some(dir.clone()),
        cache_url: None,
        batch_jobs: 4,
    })
    .unwrap();
    let requests: Vec<AnalysisRequest> =
        sets.iter().map(|(c, _)| AnalysisRequest::new(c.clone())).collect();
    let _ = service.analyze_batch(&requests); // prime the store

    let mixed: Vec<AnalysisRequest> = sets
        .iter()
        .enumerate()
        .map(|(i, (c, _))| {
            let req = AnalysisRequest::new(c.clone());
            if i == 1 {
                req.cache_mode(CacheMode::Bypass)
            } else {
                req
            }
        })
        .collect();
    let results = service.analyze_batch(&mixed);
    assert!(results[0].as_ref().unwrap().stats.cache_report_hit);
    assert!(
        !results[1].as_ref().unwrap().stats.cache_report_hit,
        "the bypass request must run cold"
    );
    assert!(results[2].as_ref().unwrap().stats.cache_report_hit);
    // and the outputs still agree
    assert_eq!(
        results[1].as_ref().unwrap().render_stable(),
        service.analyze(&requests[1]).unwrap().render_stable()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
