//! Cross-crate integration: whole-pipeline behaviours that span the
//! OCaml frontend, the C frontend, the type system and the engine.

use ffisafe::{
    AnalysisOptions, AnalysisRequest, AnalysisService, Corpus, DiagnosticCode, Severity,
};

fn run(ml: &str, c: &str) -> ffisafe::AnalysisReport {
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap()
}

fn run_with_options(ml: &str, c: &str, options: AnalysisOptions) -> ffisafe::AnalysisReport {
    let corpus = Corpus::builder().ml_source("l.ml", ml).c_source("g.c", c).build();
    AnalysisService::new().analyze(&AnalysisRequest::new(corpus).options(options)).unwrap()
}

#[test]
fn multi_file_programs_share_one_type_table() {
    let corpus = Corpus::builder()
        .ml_source("types.ml", "type handle\n")
        .ml_source(
            "api.ml",
            r#"
        external open_h : string -> handle = "ml_open"
        external close_h : handle -> unit = "ml_close"
        "#,
        )
        .c_source(
            "open.c",
            r#"
        value ml_open(value path) {
            winT *w = make_window(String_val(path));
            return (value) w;
        }
        "#,
        )
        .c_source(
            "close.c",
            r#"
        value ml_close(value h) {
            destroy_window((winT *) h);
            return Val_unit;
        }
        "#,
        )
        .build();
    let report = AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap();
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn conflated_custom_types_are_detected() {
    // the same opaque OCaml type used at two different C types: the check
    // of §2 ("not possible to perform a C type cast by passing a pointer
    // through OCaml")
    let report = run(
        r#"
        type handle
        external as_window : handle -> unit = "ml_as_window"
        external as_button : handle -> unit = "ml_as_button"
        "#,
        r#"
        value ml_as_window(value h) {
            use_window((WindowT *) h);
            return Val_unit;
        }
        value ml_as_button(value h) {
            use_button((ButtonT *) h);
            return Val_unit;
        }
        "#,
    );
    let suspicious = report
        .diagnostics
        .iter()
        .filter(|d| d.severity() == Severity::Error || d.severity() == Severity::Warning)
        .count();
    assert!(suspicious >= 1, "{}", report.render());
}

#[test]
fn recursive_list_traversal_analyzes_clean() {
    let report = run(
        r#"external len : int list -> int = "ml_len""#,
        r#"
        value ml_len(value l) {
            int n = 0;
            while (Is_block(l)) {
                n = n + 1;
                l = Field(l, 1);
            }
            return Val_int(n);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn record_field_types_are_enforced() {
    let report = run(
        r#"
        type point = { x : int; y : int; label : string }
        external get_label : point -> string = "ml_get_label"
        external broken : point -> string = "ml_broken"
        "#,
        r#"
        value ml_get_label(value p) {
            return Field(p, 2);
        }
        value ml_broken(value p) {
            return Field(p, 0); /* int field returned as string */
        }
        "#,
    );
    assert!(report.error_count() >= 1, "{}", report.render());
    // the correct accessor contributes no error: exactly the broken one
    let errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .map(|d| report.source_map().resolve(d.span()).line)
        .collect();
    assert!(errors.iter().all(|&line| line >= 5), "{}", report.render());
}

#[test]
fn arity_and_unit_interplay() {
    // arity mismatch that is NOT a trailing-unit case must be an error
    let report =
        run(r#"external f : int -> int -> int = "ml_f""#, r#"value ml_f(value a) { return a; }"#);
    assert!(
        report.diagnostics.with_code(DiagnosticCode::ArityMismatch).count() >= 1,
        "{}",
        report.render()
    );
}

#[test]
fn bytecode_native_pair_is_supported() {
    let report = run(
        r#"external big : int -> int -> int -> int -> int -> int -> int = "ml_big_bc" "ml_big""#,
        r#"
        value ml_big(value a, value b, value c, value d, value e, value f) {
            return Val_int(Int_val(a) + Int_val(f));
        }
        value ml_big_bc(value *argv, int argn) {
            return ml_big(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5]);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn ablations_change_behaviour_in_opposite_directions() {
    let ml = r#"
        type t = A of int | B | C of int * int | D
        external examine : t -> int = "ml_examine"
    "#;
    let c = r#"
        value ml_examine(value x) {
            if (Is_long(x)) { return Val_int(0); }
            switch (Tag_val(x)) {
            case 0: return Field(x, 0);
            case 1: return Field(x, 1);
            }
            return Val_int(0);
        }
    "#;
    let full = run_with_options(ml, c, AnalysisOptions::default());
    assert_eq!(full.error_count(), 0, "{}", full.render());
    let no_flow = run_with_options(
        ml,
        c,
        AnalysisOptions { flow_sensitive: false, gc_effects: true, ..AnalysisOptions::default() },
    );
    assert!(no_flow.error_count() > 0, "{}", no_flow.render());
}

#[test]
fn report_rendering_contains_locations_and_codes() {
    let report =
        run(r#"external f : int -> int = "ml_f""#, r#"value ml_f(value n) { return Val_int(n); }"#);
    let rendered = report.render();
    assert!(rendered.contains("glue.c:1:"), "{rendered}");
    assert!(rendered.contains("[E001]"), "{rendered}");
    assert!(rendered.contains("1 error(s)"), "{rendered}");
}

#[test]
fn stats_reflect_inputs() {
    let report = run(
        "external f : int -> int = \"ml_f\"\n(* two lines *)\n",
        "value ml_f(value n) { return n; }\n/* c comment */\n",
    );
    assert_eq!(report.stats.externals, 1);
    assert_eq!(report.stats.c_functions, 1);
    assert!(report.stats.ml_loc >= 2);
    assert!(report.stats.c_loc >= 2);
    assert!(report.stats.type_nodes > 0);
}
