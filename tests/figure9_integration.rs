//! Experiment E1 (DESIGN.md): the full Figure 9 reproduction, asserted.
//!
//! Every benchmark's measured row must match the paper's counts exactly
//! against the synthesized corpus, with no unexpected or missed findings.

use ffisafe::AnalysisOptions;
use ffisafe_bench::figure9::{run_all, run_benchmark};
use ffisafe_bench::spec::paper_benchmarks;

#[test]
fn figure9_totals_match_the_paper() {
    let rows = run_all(AnalysisOptions::default());
    let errors: usize = rows.iter().map(|r| r.errors).sum();
    let warnings: usize = rows.iter().map(|r| r.warnings).sum();
    let fps: usize = rows.iter().map(|r| r.false_pos).sum();
    let imps: usize = rows.iter().map(|r| r.imprecision).sum();
    assert_eq!(errors, 24, "Figure 9 total errors");
    assert_eq!(warnings, 22, "Figure 9 total warnings");
    assert_eq!(fps, 214, "Figure 9 total false positives");
    assert_eq!(imps, 75, "Figure 9 total imprecision");
    for row in &rows {
        assert!(row.unexpected.is_empty(), "{}: {:#?}", row.name, row.unexpected);
        assert!(row.missed.is_empty(), "{}: {:#?}", row.name, row.missed);
    }
}

#[test]
fn every_benchmark_row_matches_the_paper() {
    for spec in paper_benchmarks() {
        let row = run_benchmark(&spec, AnalysisOptions::default());
        assert_eq!(row.errors, spec.paper.errors, "{} errors", spec.name);
        assert_eq!(row.warnings, spec.paper.warnings, "{} warnings", spec.name);
        assert_eq!(row.false_pos, spec.paper.false_pos, "{} false positives", spec.name);
        assert_eq!(row.imprecision, spec.paper.imprecision, "{} imprecision", spec.name);
        // LoC within 20% of the paper's C size
        assert!(
            row.c_loc >= spec.paper.c_loc * 8 / 10 && row.c_loc <= spec.paper.c_loc * 12 / 10,
            "{}: C LoC {} vs paper {}",
            spec.name,
            row.c_loc,
            spec.paper.c_loc
        );
    }
}

#[test]
fn gc_ablation_misses_exactly_the_gc_errors() {
    // disabling effect tracking must lose the registration errors (E006)
    // but keep the pure type errors
    let with = run_all(AnalysisOptions::default());
    let without = run_all(AnalysisOptions {
        flow_sensitive: true,
        gc_effects: false,
        ..AnalysisOptions::default()
    });
    let with_errors: usize = with.iter().map(|r| r.errors).sum();
    let without_errors: usize = without.iter().map(|r| r.errors).sum();
    // missing-registration seeds: ftplib 1 + lablgl 1 + lablgtk 1 = 3
    assert_eq!(with_errors - without_errors, 3, "GC ablation should miss the 3 E006 seeds");
}
