//! Experiment E2 (DESIGN.md): the paper's worked example, Figures 2 and 8.
//!
//! `type t = A of int | B | C of int * int | D` translates to
//! `(2, (⊤,∅) + (⊤,∅) × (⊤,∅))`, and the Figure 2 examination code
//! type-checks with the flow-sensitive facts of Figure 8.

use ffisafe::{AnalysisRequest, AnalysisService, Corpus};
use ffisafe_ocaml::{parser, translate, Item, TypeRepository};
use ffisafe_support::{FileId, SourceMap};
use ffisafe_types::TypeTable;

const ML: &str = r#"
type t = A of int | B | C of int * int | D
external examine : t -> int = "ml_examine"
"#;

fn analyze_examine(c_src: &str) -> ffisafe::AnalysisReport {
    let corpus = Corpus::builder().ml_source("t.ml", ML).c_source("examine.c", c_src).build();
    AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap()
}

fn phase1() -> (TypeTable, translate::Phase1) {
    let mut sm = SourceMap::new();
    let file = sm.add_file("t.ml", ML);
    let parsed = parser::parse(file, ML);
    assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
    let mut repo = TypeRepository::new();
    repo.register_file(&parsed);
    let externals: Vec<_> = parsed
        .items
        .into_iter()
        .filter_map(|i| match i {
            Item::External(e) => Some(e),
            _ => None,
        })
        .collect();
    let mut table = TypeTable::new();
    let p1 = translate::translate_program(&repo, &externals, &mut table);
    (table, p1)
}

#[test]
fn representational_type_matches_section2() {
    let (table, p1) = phase1();
    let sig = p1.signature_for_c("ml_examine").expect("external found");
    // §2: "the OCaml type t has representational type (2, (⊤,∅)+(⊤,∅)×(⊤,∅))"
    assert_eq!(table.render_mt(sig.params[0]), "(2, (⊤, ∅) + (⊤, ∅) × (⊤, ∅))");
    // the return type is int: (⊤, ∅)
    assert_eq!(table.render_mt(sig.ret), "(⊤, ∅)");
}

#[test]
fn figure2_code_type_checks() {
    let report = analyze_examine(
        r#"
        value ml_examine(value x) {
            if (Is_long(x)) {
                switch (Int_val(x)) {
                case 0: /* B */ return Val_int(10);
                case 1: /* D */ return Val_int(11);
                }
            } else {
                switch (Tag_val(x)) {
                case 0: /* A */ return Field(x, 0);
                case 1: /* C */ return Val_int(Int_val(Field(x, 0)) + Int_val(Field(x, 1)));
                }
            }
            return Val_int(0);
        }
        "#,
    );
    assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
}

#[test]
fn figure8_constraints_reject_third_nullary_constructor() {
    // testing int_tag 2 on a type with exactly 2 nullary constructors
    // violates 2 + 1 ≤ Ψ once unified with t
    let report = analyze_examine(
        r#"
        value ml_examine(value x) {
            if (Is_long(x)) {
                if (Int_val(x) == 2) { return Val_int(99); }
            }
            return Val_int(0);
        }
        "#,
    );
    assert!(
        report.diagnostics.with_code(ffisafe::DiagnosticCode::ConstructorRange).count() >= 1,
        "{}",
        report.render()
    );
}

#[test]
fn boxedness_misuse_rejected() {
    // Int_val on the boxed branch of the test
    let report = analyze_examine(
        r#"
        value ml_examine(value x) {
            if (Is_long(x)) {
                return Val_int(0);
            }
            /* x is boxed here */
            return Val_int(Int_val(x));
        }
        "#,
    );
    assert!(
        report.diagnostics.with_code(ffisafe::DiagnosticCode::BoxednessMismatch).count() >= 1,
        "{}",
        report.render()
    );
}

#[test]
fn phase1_is_reusable_across_files() {
    // the central repository spans multiple OCaml files (§5.1)
    let mut sm = SourceMap::new();
    let f1 = sm.add_file("a.ml", "type t = A of int | B");
    let f2: FileId = sm.add_file("b.ml", r#"external f : t -> int = "ml_f""#);
    let p1 = parser::parse(f1, "type t = A of int | B");
    let p2 = parser::parse(f2, r#"external f : t -> int = "ml_f""#);
    let mut repo = TypeRepository::new();
    repo.register_file(&p1);
    repo.register_file(&p2);
    let externals: Vec<_> = p2
        .items
        .into_iter()
        .filter_map(|i| match i {
            Item::External(e) => Some(e),
            _ => None,
        })
        .collect();
    let mut table = TypeTable::new();
    let out = translate::translate_program(&repo, &externals, &mut table);
    let sig = out.signature_for_c("ml_f").unwrap();
    assert_eq!(table.render_mt(sig.params[0]), "(1, (⊤, ∅))");
}
