//! Integration tests for the two-tier incremental-reanalysis cache:
//!
//! * a warm run on an unchanged corpus executes **zero** inference workers
//!   and renders a byte-identical report, at `--jobs 1` and `--jobs 8`;
//! * editing one C function invalidates exactly that function's tier-1
//!   entry — its siblings replay;
//! * editing a `.rs` file invalidates only the Rust boundary-check entry
//!   — every per-function OCaml/C outcome replays — and the mixed-language
//!   fingerprints are jobs-invariant;
//! * changing `AnalysisOptions` (or the analyzer version) invalidates
//!   everything;
//! * a corrupted or truncated cache file is a miss, never a crash.

use ffisafe::{AnalysisOptions, AnalysisRequest, AnalysisService, Corpus};
use std::path::{Path, PathBuf};

const ML: &str = r#"
type handle
external a : int -> int = "ml_a"
external b : int -> int = "ml_b"
external c : int -> int = "ml_c"
"#;

/// The global `value` yields a P002 imprecision report with a runtime
/// check suggestion, so suggestion replay is exercised too.
const A_C: &str = r#"
value stashed;
value ml_a(value n) { return Val_int(Int_val(n) + 1); }
"#;

const B_C_CLEAN: &str = r#"
value ml_b(value n) { return Val_int(Int_val(n) * 2); }
"#;

/// `Val_int` applied to something that is already a `value`: E001.
const B_C_BUGGY: &str = r#"
value ml_b(value n) { return Val_int(n); }
"#;

/// Buggy from the start, so the corpus always has at least one finding.
const C_C: &str = r#"
value ml_c(value n) { return Val_int(n); }
"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffisafe-cache-it-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn analyze(
    corpus: &[(&str, &str)],
    options: AnalysisOptions,
    cache: Option<&Path>,
) -> ffisafe::AnalysisReport {
    let mut builder = Corpus::builder();
    for (name, src) in corpus {
        builder = if name.ends_with(".ml") {
            builder.ml_source(*name, *src)
        } else if name.ends_with(".rs") {
            builder.rust_source(*name, *src)
        } else {
            builder.c_source(*name, *src)
        };
    }
    let service = match cache {
        Some(dir) => AnalysisService::with_cache_dir(dir).expect("temp cache dir opens"),
        None => AnalysisService::new(),
    };
    service.analyze(&AnalysisRequest::new(builder.build()).options(options)).unwrap()
}

fn corpus(b_src: &str) -> Vec<(&'static str, String)> {
    vec![
        ("lib.ml", ML.to_string()),
        ("a.c", A_C.to_string()),
        ("b.c", b_src.to_string()),
        ("c.c", C_C.to_string()),
    ]
}

fn as_refs<'a>(v: &'a [(&'static str, String)]) -> Vec<(&'a str, &'a str)> {
    v.iter().map(|(n, s)| (*n, s.as_str())).collect()
}

#[test]
fn warm_unchanged_corpus_runs_zero_workers_and_is_byte_identical() {
    let dir = temp_dir("warm");
    let files = corpus(B_C_CLEAN);

    let cold = analyze(&as_refs(&files), AnalysisOptions::default().with_jobs(1), Some(&dir));
    assert!(!cold.stats.cache_report_hit);
    assert_eq!(cold.stats.cache_fn_hits, 0);
    assert_eq!(cold.stats.workers_executed, 3, "cold run analyzes every function");
    let reference = cold.render_stable();
    assert!(reference.contains("E001"), "corpus must produce findings:\n{reference}");

    for jobs in [1, 8] {
        let warm =
            analyze(&as_refs(&files), AnalysisOptions::default().with_jobs(jobs), Some(&dir));
        assert!(warm.stats.cache_report_hit, "unchanged corpus is a report-tier hit");
        assert_eq!(warm.stats.workers_executed, 0, "warm run must execute zero workers");
        assert_eq!(warm.render_stable(), reference, "jobs={jobs} must be byte-identical");
        assert_eq!(warm.error_count(), cold.error_count());
        assert_eq!(warm.warning_count(), cold.warning_count());
        assert_eq!(warm.imprecision_count(), cold.imprecision_count());
        // Structured diagnostics are replayed too, so downstream APIs
        // behave identically at any cache temperature.
        assert_eq!(warm.diagnostics.len(), cold.diagnostics.len());
        let cold_suggestions = cold.suggest_runtime_checks();
        assert!(!cold_suggestions.is_empty(), "global value must yield a suggestion");
        assert_eq!(warm.suggest_runtime_checks().len(), cold_suggestions.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn editing_one_function_invalidates_exactly_that_entry() {
    let before = corpus(B_C_CLEAN);
    let after = corpus(B_C_BUGGY);

    // One fresh cache per worker width: prime with the clean corpus, then
    // edit `ml_b`'s body only — siblings must replay, `ml_b` must re-run.
    for jobs in [1, 8] {
        let dir = temp_dir(&format!("edit-j{jobs}"));
        let cold = analyze(&as_refs(&before), AnalysisOptions::default().with_jobs(1), Some(&dir));
        let errors_before = cold.error_count();

        let warm =
            analyze(&as_refs(&after), AnalysisOptions::default().with_jobs(jobs), Some(&dir));
        assert!(!warm.stats.cache_report_hit, "changed corpus must miss the report tier");
        assert_eq!(warm.stats.cache_fn_hits, 2, "ml_a and ml_c replay (jobs={jobs})");
        assert_eq!(warm.stats.cache_fn_misses, 1, "only ml_b re-runs (jobs={jobs})");
        assert_eq!(warm.stats.workers_executed, 1);
        assert_eq!(warm.error_count(), errors_before + 1, "the new bug is found");

        // byte-identical to an uncached run of the edited corpus
        let fresh = analyze(&as_refs(&after), AnalysisOptions::default().with_jobs(1), None);
        assert_eq!(warm.render_stable(), fresh.render_stable());

        // Reverting the edit replays everything again (entries for the
        // clean body were written by the cold run, so the report tier
        // hits and the output matches the original run exactly).
        let reverted =
            analyze(&as_refs(&before), AnalysisOptions::default().with_jobs(1), Some(&dir));
        assert!(reverted.stats.cache_report_hit);
        assert_eq!(reverted.render_stable(), cold.render_stable());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The tier-1 base digest is a digest of the *frozen post-link base
/// state*, not of the input file surface. Two properties ride on that:
/// the digest is identical whatever `--jobs` width computed it (prime the
/// cache wide, edit narrow — siblings must still replay), and identical
/// across cold and warm runs (a revert at yet another width must hit the
/// report tier, which requires bit-for-bit digest agreement).
#[test]
fn overlay_digest_is_jobs_invariant_and_matches_across_cold_and_warm() {
    let before = corpus(B_C_CLEAN);
    let after = corpus(B_C_BUGGY);
    let dir = temp_dir("overlay-digest");

    // Prime at jobs = 8.
    let cold = analyze(&as_refs(&before), AnalysisOptions::default().with_jobs(8), Some(&dir));
    assert!(!cold.stats.cache_report_hit);
    assert_eq!(cold.stats.cache_fn_misses, 3);

    // Edit one function body and replay at jobs = 1: the narrow run's
    // frozen-state digest must equal the wide run's, or the untouched
    // siblings would miss.
    let edited = analyze(&as_refs(&after), AnalysisOptions::default().with_jobs(1), Some(&dir));
    assert!(!edited.stats.cache_report_hit);
    assert_eq!(edited.stats.cache_fn_hits, 2, "ml_a and ml_c replay across widths");
    assert_eq!(edited.stats.cache_fn_misses, 1, "a single-body edit invalidates one entry");
    assert_eq!(edited.stats.workers_executed, 1);
    let fresh = analyze(&as_refs(&after), AnalysisOptions::default().with_jobs(1), None);
    assert_eq!(edited.render_stable(), fresh.render_stable(), "mixed replay is byte-identical");

    // Revert at a third width: everything replays from the entries the
    // jobs=8 cold run wrote, so the report tier hits outright.
    let reverted = analyze(&as_refs(&before), AnalysisOptions::default().with_jobs(2), Some(&dir));
    assert!(reverted.stats.cache_report_hit, "cold and warm digests must agree");
    assert_eq!(reverted.stats.workers_executed, 0);
    assert_eq!(reverted.render_stable(), cold.render_stable());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A Rust boundary declaration that agrees with `ml_a`'s C definition
/// (`value` parameters are opaque to the layout check).
const RS_CLEAN: &str = r#"extern "C" { fn ml_a(n: i32) -> i32; }"#;

/// The same import with a phantom second parameter: E011.
const RS_BUGGY: &str = r#"extern "C" { fn ml_a(n: i32, extra: i32) -> i32; }"#;

fn mixed_corpus(rs_src: &str) -> Vec<(&'static str, String)> {
    let mut files = corpus(B_C_CLEAN);
    files.push(("lib.rs", rs_src.to_string()));
    files
}

/// The Rust surface never reaches the frozen base-state digest, so a
/// `.rs`-only edit invalidates exactly the memoized boundary check: every
/// per-function OCaml/C outcome replays (zero workers) while the Rust
/// check re-runs — at any worker width, cold-primed or warm.
#[test]
fn rust_edit_invalidates_only_rust_entries() {
    let before = mixed_corpus(RS_CLEAN);
    let after = mixed_corpus(RS_BUGGY);

    for jobs in [1, 8] {
        let dir = temp_dir(&format!("rust-edit-j{jobs}"));
        let cold = analyze(&as_refs(&before), AnalysisOptions::default().with_jobs(1), Some(&dir));
        assert!(!cold.stats.rust_check_cached, "cold run computes the boundary check");
        assert_eq!(cold.stats.rust_externs, 1);
        let errors_before = cold.error_count();

        // Unchanged mixed corpus: report-tier hit, zero workers.
        let warm =
            analyze(&as_refs(&before), AnalysisOptions::default().with_jobs(jobs), Some(&dir));
        assert!(warm.stats.cache_report_hit, "unchanged mixed corpus hits the report tier");
        assert_eq!(warm.stats.workers_executed, 0);
        assert_eq!(warm.render_stable(), cold.render_stable());

        // Edit only the .rs file: the report tier misses, every OCaml/C
        // function entry replays, and only the Rust check recomputes.
        let edited =
            analyze(&as_refs(&after), AnalysisOptions::default().with_jobs(jobs), Some(&dir));
        assert!(!edited.stats.cache_report_hit);
        assert_eq!(edited.stats.cache_fn_hits, 3, "all C functions replay (jobs={jobs})");
        assert_eq!(edited.stats.workers_executed, 0, "a .rs edit runs zero inference workers");
        assert!(!edited.stats.rust_check_cached, "the boundary check must recompute");
        assert_eq!(edited.error_count(), errors_before + 1, "the new E011 is found");

        // Byte-identical to an uncached run of the edited corpus.
        let fresh = analyze(&as_refs(&after), AnalysisOptions::default().with_jobs(1), None);
        assert_eq!(edited.render_stable(), fresh.render_stable());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The Rust-check fingerprint covers the C *signature* surface, never C
/// bodies: a body-only C edit re-runs that function's inference but
/// replays the memoized Rust boundary verdict.
#[test]
fn c_body_edit_keeps_the_rust_check_memoized() {
    let dir = temp_dir("rust-c-body");
    let before = mixed_corpus(RS_CLEAN);
    let mut after = mixed_corpus(RS_CLEAN);
    for (name, src) in &mut after {
        if *name == "b.c" {
            *src = B_C_BUGGY.to_string();
        }
    }

    let cold = analyze(&as_refs(&before), AnalysisOptions::default().with_jobs(1), Some(&dir));
    assert!(!cold.stats.rust_check_cached);

    let edited = analyze(&as_refs(&after), AnalysisOptions::default().with_jobs(1), Some(&dir));
    assert!(!edited.stats.cache_report_hit);
    assert_eq!(edited.stats.cache_fn_misses, 1, "only ml_b re-runs");
    assert!(edited.stats.rust_check_cached, "a C body edit must not invalidate the Rust check");
    let fresh = analyze(&as_refs(&after), AnalysisOptions::default().with_jobs(1), None);
    assert_eq!(edited.render_stable(), fresh.render_stable());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn options_change_invalidates_everything() {
    let dir = temp_dir("options");
    let files = corpus(B_C_CLEAN);

    let cold = analyze(&as_refs(&files), AnalysisOptions::default().with_jobs(1), Some(&dir));
    assert_eq!(cold.stats.cache_fn_misses, 3);

    // Different semantic options: nothing may be reused.
    let mut no_flow = AnalysisOptions::default().with_jobs(1);
    no_flow.flow_sensitive = false;
    let other = analyze(&as_refs(&files), no_flow, Some(&dir));
    assert!(!other.stats.cache_report_hit, "options are part of the report key");
    assert_eq!(other.stats.cache_fn_hits, 0, "options are part of every fingerprint");
    assert_eq!(other.stats.workers_executed, 3);

    // The original options still hit: the two keyspaces coexist.
    let warm = analyze(&as_refs(&files), AnalysisOptions::default().with_jobs(1), Some(&dir));
    assert!(warm.stats.cache_report_hit);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyzer_version_change_invalidates_everything() {
    let dir = temp_dir("version");
    let files = corpus(B_C_CLEAN);
    analyze(&as_refs(&files), AnalysisOptions::default().with_jobs(1), Some(&dir));

    // Reopening the same directory as a different analyzer build wipes it.
    let store = ffisafe_cache::CacheStore::open(&dir, "ffisafe 99.0.0 schema 999").unwrap();
    assert_eq!(store.entry_count(), 0, "version mismatch wipes the store");
    drop(store);

    // The real analyzer then treats everything as a miss and recovers.
    let warm = analyze(&as_refs(&files), AnalysisOptions::default().with_jobs(1), Some(&dir));
    assert!(!warm.stats.cache_report_hit);
    assert_eq!(warm.stats.cache_fn_hits, 0);
    assert_eq!(warm.stats.workers_executed, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_files_are_misses_not_crashes() {
    let dir = temp_dir("corrupt");
    let files = corpus(B_C_CLEAN);
    let cold = analyze(&as_refs(&files), AnalysisOptions::default().with_jobs(1), Some(&dir));
    let reference = cold.render_stable();

    // Damage every entry: truncate function entries, bit-flip the report
    // entry, and scribble over the index for good measure.
    let mut damaged = 0;
    for dirent in std::fs::read_dir(&dir).unwrap().flatten() {
        let path = dirent.path();
        let name = dirent.file_name().to_string_lossy().into_owned();
        let bytes = std::fs::read(&path).unwrap();
        if name.starts_with("fn-") {
            std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
            damaged += 1;
        } else if name.starts_with("rp-") {
            let mut b = bytes.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0xff;
            std::fs::write(&path, &b).unwrap();
            damaged += 1;
        }
    }
    assert!(damaged >= 4, "expected 3 function entries and 1 report entry, found {damaged}");

    let warm = analyze(&as_refs(&files), AnalysisOptions::default().with_jobs(1), Some(&dir));
    assert!(!warm.stats.cache_report_hit, "corrupt report entry must miss");
    assert_eq!(warm.stats.cache_fn_hits, 0, "corrupt function entries must miss");
    assert_eq!(warm.stats.workers_executed, 3);
    assert_eq!(warm.render_stable(), reference, "recovered run is still correct");

    // The recovery run rewrote good entries: the next run hits again.
    let again = analyze(&as_refs(&files), AnalysisOptions::default().with_jobs(1), Some(&dir));
    assert!(again.stats.cache_report_hit);
    assert_eq!(again.render_stable(), reference);

    // A trashed index alone must also degrade gracefully.
    std::fs::write(dir.join("index.bin"), b"not an index at all").unwrap();
    let rebuilt = analyze(&as_refs(&files), AnalysisOptions::default().with_jobs(1), Some(&dir));
    assert!(!rebuilt.stats.cache_report_hit, "wiped store starts cold");
    assert_eq!(rebuilt.render_stable(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_disabled_runs_are_unaffected() {
    let files = corpus(B_C_CLEAN);
    let report = analyze(&as_refs(&files), AnalysisOptions::default().with_jobs(2), None);
    assert!(!report.stats.cache_report_hit);
    assert_eq!(report.stats.cache_fn_hits, 0);
    assert_eq!(report.stats.cache_fn_misses, 0, "no cache, no misses counted");
    assert_eq!(report.stats.workers_executed, 3, "every function analyzed live");
}
